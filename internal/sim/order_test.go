package sim

import (
	"encoding/json"
	"fmt"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/supremacy"
)

// reorderStrategy builds a "reorder" registry strategy for the given static
// ordering, exercising the same path HTTP submissions take.
func reorderStrategy(t *testing.T, params string) core.Strategy {
	t.Helper()
	st, err := core.NewStrategyByName("reorder", json.RawMessage(params))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func orderTestCircuits(t *testing.T) map[string]*circuit.Circuit {
	t.Helper()
	sup, err := supremacy.Config{Rows: 3, Cols: 3, Depth: 8, Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	pairs := circuit.New(10, "pairs")
	for i := 0; i < 5; i++ {
		pairs.H(i)
		pairs.CX(i, i+5)
	}
	return map[string]*circuit.Circuit{
		"qft":       gen.QFT(8),
		"grover":    gen.Grover(8, 137, 0),
		"supremacy": sup,
		"pairs":     pairs,
	}
}

// TestOrderingDifferential is the acceptance differential: identity,
// reversed, and scored orderings (and scored+sift) must produce the same
// measurement distribution — amplitude by amplitude — as the identity-order
// reference on QFT, Grover, supremacy, and entangled-pairs circuits.
func TestOrderingDifferential(t *testing.T) {
	for name, c := range orderTestCircuits(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := New().Run(c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Manager.ToVector(ref.Final, c.NumQubits)

			for _, mode := range []string{
				`{"order":"identity"}`,
				`{"order":"reversed"}`,
				`{"order":"scored"}`,
				`{"order":"scored","sift":true,"sift_threshold":8}`,
			} {
				res, err := New().Run(c, Options{Strategy: reorderStrategy(t, mode)})
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				got := res.Manager.ToVector(res.Final, c.NumQubits)
				for i := range want {
					if d := cmplx.Abs(got[i] - want[i]); d > 1e-10 {
						t.Fatalf("%s: amplitude[%d] differs by %g", mode, i, d)
					}
				}
				if res.InitialOrder == nil {
					t.Fatalf("%s: InitialOrder not recorded", mode)
				}
				if res.FinalOrder == nil {
					t.Fatalf("%s: FinalOrder not recorded", mode)
				}
			}
		})
	}
}

// TestOrderingMeasurementDifferential runs mid-circuit measurements under
// every ordering with the same seed and expects identical outcome sequences
// (the collapse probabilities are exactly equal, so equal uniform draws give
// equal outcomes).
func TestOrderingMeasurementDifferential(t *testing.T) {
	c := circuit.New(6, "measured")
	for q := 0; q < 6; q++ {
		c.H(q)
	}
	c.CX(0, 3)
	c.CX(1, 4)
	c.Measure(2)
	c.CX(2, 5)
	c.Measure(4)
	c.H(1)
	c.Measure(0)

	ref, err := New().Run(c, Options{MeasurementSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{`{"order":"reversed"}`, `{"order":"scored"}`} {
		res, err := New().Run(c, Options{MeasurementSeed: 99, Strategy: reorderStrategy(t, mode)})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(res.Measurements) != len(ref.Measurements) {
			t.Fatalf("%s: %d measurements, want %d", mode, len(res.Measurements), len(ref.Measurements))
		}
		for i := range ref.Measurements {
			if res.Measurements[i] != ref.Measurements[i] {
				t.Fatalf("%s: measurement %d = %+v, want %+v", mode, i, res.Measurements[i], ref.Measurements[i])
			}
		}
	}
}

// TestOrderingComposesWithApproximation wraps the memory-driven strategy in
// a reorder strategy and checks rounds still fire and fidelity accounting
// still holds.
func TestOrderingComposesWithApproximation(t *testing.T) {
	c := orderTestCircuits(t)["supremacy"]
	st := reorderStrategy(t, `{"order":"scored","inner":"memory","inner_params":{"threshold":24,"round_fidelity":0.9}}`)
	res, err := New().Run(c, Options{Strategy: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("no approximation rounds under the wrapped memory strategy")
	}
	if res.EstimatedFidelity <= 0 || res.EstimatedFidelity > 1 {
		t.Fatalf("EstimatedFidelity = %v", res.EstimatedFidelity)
	}
	if res.StrategyName != "reorder(scored)+memory-driven" {
		t.Fatalf("StrategyName = %q", res.StrategyName)
	}
}

// TestStaticOrderReducesPeak pins the headline win: the entangled-pairs
// workload peaks far lower under the scored order than under identity.
func TestStaticOrderReducesPeak(t *testing.T) {
	c := orderTestCircuits(t)["pairs"]
	ident, err := New().Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scored, err := New().Run(c, Options{Strategy: reorderStrategy(t, `{"order":"scored"}`)})
	if err != nil {
		t.Fatal(err)
	}
	if scored.MaxDDSize*4 > ident.MaxDDSize {
		t.Fatalf("scored order peak %d, identity peak %d: expected ≥ 4× reduction",
			scored.MaxDDSize, ident.MaxDDSize)
	}
}

// TestSiftingReducesPeakMidRun checks a dynamic pass fires, shrinks the
// state, and reports through the observer and the result.
func TestSiftingReducesPeakMidRun(t *testing.T) {
	c := orderTestCircuits(t)["pairs"]
	obs := &countingObserver{}
	res, err := New().Run(c, Options{
		Strategy: reorderStrategy(t, `{"order":"identity","sift":true,"sift_threshold":8,"sift_max_passes":4}`),
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SiftPasses == 0 || res.SiftSwaps == 0 {
		t.Fatalf("no sifting recorded: %+v", res)
	}
	if obs.reorders != res.SiftPasses {
		t.Fatalf("observer saw %d reorder events, result records %d passes", obs.reorders, res.SiftPasses)
	}
	if obs.lastReorder.SizeAfter >= obs.lastReorder.SizeBefore {
		t.Fatalf("last pass did not shrink: %+v", obs.lastReorder)
	}
	identityOrder := true
	for q, l := range res.FinalOrder {
		if q != l {
			identityOrder = false
		}
	}
	if identityOrder {
		t.Fatal("sifting left the identity order on a workload it must reorder")
	}
	if got := res.DDStats.LevelSwaps; got == 0 {
		t.Fatal("manager LevelSwaps counter not threaded into DDStats")
	}
}

// TestReorderRejectsKeepAlive: combining reordering with cross-run states
// must fail loudly instead of silently reinterpreting them.
func TestReorderRejectsKeepAlive(t *testing.T) {
	s := New()
	first, err := s.Run(gen.QFT(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(gen.QFT(4), Options{
		Strategy:  reorderStrategy(t, `{"order":"reversed"}`),
		KeepAlive: []dd.VEdge{first.Final},
	})
	if err == nil {
		t.Fatal("reorder + KeepAlive accepted")
	}
}

// TestReorderRejectsPermGates: permutation payloads address levels directly.
func TestReorderRejectsPermGates(t *testing.T) {
	c := circuit.New(3, "perm")
	c.H(2)
	c.Permutation([]int{1, 0, 3, 2}, 2)
	if _, err := New().Run(c, Options{Strategy: reorderStrategy(t, `{"order":"scored"}`)}); err == nil {
		t.Fatal("reorder accepted a permutation-gate circuit")
	}
	if _, err := New().Run(c, Options{}); err != nil {
		t.Fatalf("identity-order run must still work: %v", err)
	}
}

// TestManagerOrderResetBetweenRuns: a reused simulator must fall back to the
// identity order for runs without a reordering strategy.
func TestManagerOrderResetBetweenRuns(t *testing.T) {
	s := New()
	if _, err := s.Run(gen.QFT(5), Options{Strategy: reorderStrategy(t, `{"order":"reversed"}`)}); err != nil {
		t.Fatal(err)
	}
	if !s.M.OrderIsIdentity() {
		// The reordered run leaves its order on the manager…
		res, err := s.Run(gen.QFT(5), Options{})
		if err != nil {
			t.Fatal(err)
		}
		// …but a plain run resets to identity before building state.
		if !s.M.OrderIsIdentity() {
			t.Fatal("plain run did not restore the identity order")
		}
		if res.InitialOrder != nil {
			t.Fatal("plain run should not record an order")
		}
	}
}

// TestOrderStrategyDirectConstruction covers NewReorder (the in-process,
// non-registry path) with an explicit inner strategy.
func TestOrderStrategyDirectConstruction(t *testing.T) {
	c := orderTestCircuits(t)["qft"]
	st := order.NewReorder(core.ReorderPolicy{Static: order.Reversed}, &core.MemoryDriven{Threshold: 1 << 12, RoundFidelity: 0.99})
	res, err := New().Run(c, Options{Strategy: st})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("reorder(%s)+memory-driven", order.Reversed)
	if res.StrategyName != want {
		t.Fatalf("StrategyName = %q, want %q", res.StrategyName, want)
	}
	for q, l := range res.InitialOrder {
		if l != c.NumQubits-1-q {
			t.Fatalf("InitialOrder = %v, want reversed", res.InitialOrder)
		}
	}
}
