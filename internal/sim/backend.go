package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/density"
)

// Backend selects the state representation a Session evolves.
type Backend string

const (
	// BackendStatevector is the default: a pure state on a vector DD.
	// With Options.Noise set it simulates one Monte-Carlo trajectory,
	// sampling a Kraus branch per touched qubit after each gate.
	BackendStatevector Backend = "statevector"
	// BackendDensity evolves a density matrix on a matrix DD, applying
	// Options.Noise exactly as a superoperator — one run replaces
	// thousands of averaged trajectories. Approximation strategies and
	// reordering are statevector-only; density sessions require exact
	// simulation under the identity order.
	BackendDensity Backend = "density"
)

// Backends lists the valid backend names (the serve request schema).
func Backends() []Backend { return []Backend{BackendStatevector, BackendDensity} }

// initBackend wires the session's representation-specific state: the density
// state for BackendDensity, and the per-qubit lifted Kraus operator DDs +
// branch RNG when noise is configured on either backend. Called from init
// after the manager's variable order is settled (lifted channel DDs address
// levels through the current order).
func (ses *Session) initBackend(m *dd.Manager, c *circuit.Circuit, opts Options) error {
	switch opts.Backend {
	case "", BackendStatevector:
	case BackendDensity:
		if _, ok := ses.strategy.(core.Exact); !ok {
			return fmt.Errorf("sim: density backend requires exact simulation (strategy %q is statevector-only)", ses.strategy.Name())
		}
		ses.den = density.NewBasis(m, c.NumQubits, opts.InitialState)
	default:
		return fmt.Errorf("sim: unknown backend %q (known: %v)", opts.Backend, Backends())
	}
	if opts.Noise != nil {
		ch, err := opts.Noise.Channel()
		if err != nil {
			return err
		}
		ses.channel = ch
		if !ch.Identity() {
			ses.chanDDs = make([][]dd.MEdge, c.NumQubits)
			for q := 0; q < c.NumQubits; q++ {
				ses.chanDDs[q] = ch.Lift(m, c.NumQubits, q)
			}
			if ses.den == nil {
				ses.noiseRNG = rand.New(rand.NewSource(opts.Noise.Seed))
			}
		}
	}
	return nil
}

// curSize returns the node count of the live state under either backend.
func (ses *Session) curSize() int {
	if ses.den != nil {
		return ses.sim.M.CountM(ses.den.Root)
	}
	return ses.sim.M.CountV(ses.state)
}

// stepDensity is step() for the density backend: the same between-gate
// interruption check, gate application as ρ → U ρ U†, exact superoperator
// noise on every touched qubit, observer events, and occupancy-triggered
// cleanup with the density root and lifted channel DDs as mark roots.
func (ses *Session) stepDensity() error {
	i := ses.next
	c, m := ses.c, ses.sim.M
	if ses.ctx != nil {
		if err := context.Cause(ses.ctx); err != nil {
			if errors.Is(err, ErrDeadlineExceeded) {
				return fmt.Errorf("after gate %d of %d: %w", i, c.Len(), err)
			}
			return fmt.Errorf("sim: canceled after gate %d of %d: %w", i, c.Len(), err)
		}
	}
	g := c.Gates()[i]
	switch g.Kind {
	case circuit.KindMeasure, circuit.KindReset:
		if ses.measureRNG == nil {
			ses.measureRNG = rand.New(rand.NewSource(ses.opts.MeasurementSeed))
		}
		bit := ses.den.MeasureQubit(g.Target, ses.measureRNG)
		ses.res.Measurements = append(ses.res.Measurements, Measurement{
			GateIndex: i, Qubit: g.Target, Outcome: bit,
		})
		if g.Kind == circuit.KindReset && bit == 1 {
			x := m.MakeGateDD(c.NumQubits, [4]complex128{0, 1, 1, 0}, g.Target)
			ses.den.ApplyUnitary(x)
		}
	default:
		op, err := ses.sim.gateDD(g, c.NumQubits)
		if err != nil {
			return fmt.Errorf("sim: gate %d (%s): %w", i, g.String(), err)
		}
		ses.den.ApplyUnitary(op)
	}
	if m.IsMZero(ses.den.Root) {
		return fmt.Errorf("sim: density state vanished after gate %d (%s)", i, g.String())
	}
	if ses.chanDDs != nil {
		for _, q := range gateTouches(g) {
			ses.den.ApplyKraus(ses.chanDDs[q])
			ses.res.ChannelApplications++
			ses.obs.OnChannel(core.ChannelEvent{
				GateIndex: i,
				Qubit:     q,
				Kind:      string(ses.channel.Kind()),
				Strength:  ses.channel.P(),
				Branch:    -1,
				Size:      m.CountM(ses.den.Root),
			})
		}
	}
	size := m.CountM(ses.den.Root)
	if size > ses.res.MaxDDSize {
		ses.res.MaxDDSize = size
	}
	if ses.opts.CollectSizeHistory {
		ses.res.SizeHistory = append(ses.res.SizeHistory, size)
	}
	ses.obs.OnGate(core.GateEvent{Index: i, Size: size})
	if live := m.Pool().Live; live > ses.highWater {
		mRoots := ses.sim.mRoots[:0]
		mRoots = append(mRoots, ses.den.Root)
		for _, e := range ses.sim.gateDDs {
			if e.N != nil {
				mRoots = append(mRoots, e)
			}
		}
		for _, ops := range ses.chanDDs {
			mRoots = append(mRoots, ops...)
		}
		ses.sim.mRoots = mRoots
		m.Cleanup(ses.opts.KeepAlive, mRoots)
		ses.res.Cleanups++
		after := m.Pool().Live
		if 4*after > ses.highWater {
			ses.highWater = 4 * after
		}
		ses.obs.OnCleanup(core.CleanupEvent{GateIndex: i, Live: after, Freed: live - after})
	}
	ses.next = i + 1
	return nil
}

// injectNoise applies one sampled Kraus branch per touched qubit to the
// statevector — the trajectory unraveling of the channel the density backend
// applies exactly. Mixed-unitary channels sample their state-independent
// branch probabilities directly; otherwise (amplitude damping) branch
// probabilities are the post-application norms p_k = |W(K_k|ψ⟩)|², the
// quantum-jump method. Applying the un-normalized Kraus DD and renormalizing
// the root weight is equivalent to applying the branch unitary (the √p_k
// prefactor lands in the root weight), so one code path serves both cases.
func (ses *Session) injectNoise(gateIdx int, g circuit.Gate) error {
	m := ses.sim.M
	for _, q := range gateTouches(g) {
		ops := ses.chanDDs[q]
		branch := 0
		if probs, ok := ses.channel.MixedUnitary(); ok {
			r := ses.noiseRNG.Float64()
			for branch = 0; branch < len(probs)-1; branch++ {
				if r < probs[branch] {
					break
				}
				r -= probs[branch]
			}
			ses.state = m.MulVec(ops[branch], ses.state)
		} else {
			branches := make([]dd.VEdge, len(ops))
			total := 0.0
			probs := make([]float64, len(ops))
			for k, op := range ops {
				branches[k] = m.MulVec(op, ses.state)
				probs[k] = branches[k].W.Abs2()
				total += probs[k]
			}
			if total == 0 {
				return fmt.Errorf("sim: all noise branches vanished after gate %d", gateIdx)
			}
			r := ses.noiseRNG.Float64() * total
			for branch = 0; branch < len(ops)-1; branch++ {
				if r < probs[branch] {
					break
				}
				r -= probs[branch]
			}
			ses.state = branches[branch]
		}
		ses.state = m.NormalizeRootWeight(ses.state)
		if m.IsVZero(ses.state) {
			return fmt.Errorf("sim: state vanished in noise branch %d after gate %d", branch, gateIdx)
		}
		if branch != 0 {
			ses.res.ChannelApplications++
			ses.obs.OnChannel(core.ChannelEvent{
				GateIndex: gateIdx,
				Qubit:     q,
				Kind:      string(ses.channel.Kind()),
				Strength:  ses.channel.P(),
				Branch:    branch,
				Size:      m.CountV(ses.state),
			})
		}
	}
	return nil
}
