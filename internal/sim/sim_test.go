package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
)

func randomCircuit(n, gates int, rng *rand.Rand) *circuit.Circuit {
	c := circuit.New(n, "random")
	names := []string{"x", "y", "z", "h", "s", "t", "sx"}
	for i := 0; i < gates; i++ {
		target := rng.Intn(n)
		var controls []dd.Control
		if n > 1 && rng.Intn(2) == 0 {
			q := rng.Intn(n)
			for q == target {
				q = rng.Intn(n)
			}
			controls = append(controls, dd.Control{Qubit: q, Positive: rng.Intn(4) != 0})
		}
		switch rng.Intn(3) {
		case 0:
			c.Apply(names[rng.Intn(len(names))], nil, target, controls...)
		case 1:
			c.Apply("rz", []float64{rng.Float64()*2*math.Pi - math.Pi}, target, controls...)
		default:
			c.Apply("ry", []float64{rng.Float64()*2*math.Pi - math.Pi}, target, controls...)
		}
	}
	return c
}

func denseRun(c *circuit.Circuit, initial uint64) *dense.State {
	ds := dense.NewBasisState(c.NumQubits, initial)
	for _, g := range c.Gates() {
		switch g.Kind {
		case circuit.KindUnitary:
			u, err := g.Matrix()
			if err != nil {
				panic(err)
			}
			ctls := make([]dense.ControlSpec, len(g.Controls))
			for i, ct := range g.Controls {
				ctls[i] = dense.ControlSpec{Qubit: ct.Qubit, Positive: ct.Positive}
			}
			ds.ApplyGate(u, g.Target, ctls...)
		case circuit.KindPerm:
			ctls := make([]dense.ControlSpec, len(g.Controls))
			for i, ct := range g.Controls {
				ctls[i] = dense.ControlSpec{Qubit: ct.Qubit, Positive: ct.Positive}
			}
			ds.ApplyPermutation(g.Perm, g.PermWidth, ctls...)
		}
	}
	return ds
}

func statesAgreeUpToPhase(t *testing.T, m *dd.Manager, e dd.VEdge, ds *dense.State, tol float64) {
	t.Helper()
	got := m.ToVector(e, ds.N)
	ref, best := -1, 0.0
	for i, a := range ds.Amp {
		if ab := cmplx.Abs(a); ab > best {
			best, ref = ab, i
		}
	}
	phase := ds.Amp[ref] / got[ref]
	phase /= complex(cmplx.Abs(phase), 0)
	for i := range got {
		if cmplx.Abs(got[i]*phase-ds.Amp[i]) > tol {
			t.Fatalf("amplitude %d: %v vs %v", i, got[i]*phase, ds.Amp[i])
		}
	}
}

func TestExactSimulationMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(5)
		c := randomCircuit(n, 10+rng.Intn(40), rng)
		initial := uint64(rng.Intn(1 << uint(n)))
		s := New()
		res, err := s.Run(c, Options{InitialState: initial})
		if err != nil {
			t.Fatal(err)
		}
		if res.EstimatedFidelity != 1 || res.FidelityBound != 1 || len(res.Rounds) != 0 {
			t.Fatal("exact run recorded approximation rounds")
		}
		statesAgreeUpToPhase(t, s.M, res.Final, denseRun(c, initial), 1e-7)
	}
}

func TestSimulationWithPermGates(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	n := 5
	c := circuit.New(n, "perm-mix")
	c.H(4)
	c.H(3)
	perm := rng.Perm(8)
	c.Permutation(perm, 3, dd.PosControl(4))
	c.CX(3, 0)
	perm2 := rng.Perm(4)
	c.Permutation(perm2, 2, dd.PosControl(3), dd.PosControl(4))
	s := New()
	res, err := s.Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	statesAgreeUpToPhase(t, s.M, res.Final, denseRun(c, 0), 1e-9)
}

func TestMemoryDrivenRun(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	n := 8
	c := randomCircuit(n, 120, rng)
	s := New()
	res, err := s.Run(c, Options{
		Strategy:           &core.MemoryDriven{Threshold: 16, RoundFidelity: 0.98},
		CollectSizeHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 {
		t.Fatal("memory-driven never triggered on a dense random circuit")
	}
	if res.EstimatedFidelity >= 1 {
		t.Error("approximation rounds recorded but fidelity still 1")
	}
	if res.EstimatedFidelity < res.FidelityBound-1e-9 {
		t.Errorf("estimate %v below bound %v", res.EstimatedFidelity, res.FidelityBound)
	}
	if len(res.SizeHistory) != c.Len() {
		t.Errorf("size history length %d, want %d", len(res.SizeHistory), c.Len())
	}
}

func TestFidelityTrackingEndToEnd(t *testing.T) {
	// The tracked product of per-round fidelities (Section V) must closely
	// estimate the true fidelity between exact and approximate final
	// states. Lemma 1 makes the product exact for back-to-back truncations
	// (covered in core's tests); with unitaries interleaved the product is
	// the paper's tracked estimate — here we bound its deviation and check
	// the designed lower bound holds.
	rng := rand.New(rand.NewSource(83))
	triggered := 0
	for trial := 0; trial < 5; trial++ {
		n := 6 + rng.Intn(3)
		c := randomCircuit(n, 80, rng)
		cmp, err := RunAndCompare(c, Options{
			Strategy: &core.MemoryDriven{Threshold: 12, RoundFidelity: 0.97},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(cmp.Approx.Rounds) == 0 {
			continue
		}
		triggered++
		if cmp.EstimateError > 0.02 {
			t.Fatalf("fidelity estimate off: true %v vs product %v (err %v, %d rounds)",
				cmp.TrueFidelity, cmp.Approx.EstimatedFidelity, cmp.EstimateError, len(cmp.Approx.Rounds))
		}
		if cmp.TrueFidelity < cmp.Approx.FidelityBound-1e-6 {
			t.Fatalf("true fidelity %v below designed bound %v",
				cmp.TrueFidelity, cmp.Approx.FidelityBound)
		}
	}
	if triggered == 0 {
		t.Fatal("no trial triggered approximation")
	}
}

func TestFidelityDrivenRun(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	n := 7
	c := randomCircuit(n, 100, rng)
	// Mark block boundaries every 10 gates.
	blocked := circuit.New(n, "blocked")
	for i, g := range c.Gates() {
		blocked.Append(g)
		if (i+1)%10 == 0 {
			blocked.EndBlock()
		}
	}
	strat := core.NewFidelityDriven(0.5, 0.9)
	cmp, err := RunAndCompare(blocked, Options{Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TrueFidelity < 0.5-1e-6 {
		t.Errorf("final fidelity %v below guaranteed 0.5", cmp.TrueFidelity)
	}
	if len(cmp.Approx.Rounds) > strat.MaxRounds() {
		t.Errorf("%d rounds exceed MaxRounds %d", len(cmp.Approx.Rounds), strat.MaxRounds())
	}
	if cmp.EstimateError > 0.02 {
		t.Errorf("estimate error %v", cmp.EstimateError)
	}
}

func TestGateCacheReuse(t *testing.T) {
	// Applying the same gate many times must not rebuild its DD each time:
	// node creation should stay far below the no-cache count.
	c := circuit.New(4, "repeat")
	for i := 0; i < 50; i++ {
		c.H(2)
	}
	s := New()
	if _, err := s.Run(c, Options{}); err != nil {
		t.Fatal(err)
	}
	created := s.M.Stats().MNodesCreated
	if created > 40 {
		t.Errorf("gate cache ineffective: %d matrix nodes created for 50 repeats of one gate", created)
	}
}

func TestCleanupTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	c := randomCircuit(8, 200, rng)
	s := New()
	res, err := s.Run(c, Options{CleanupHighWater: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cleanups == 0 {
		t.Error("cleanup never triggered with a tiny high-water mark")
	}
	// Result must still match dense.
	statesAgreeUpToPhase(t, s.M, res.Final, denseRun(c, 0), 1e-7)
}

func TestEmptyCircuit(t *testing.T) {
	c := circuit.New(3, "empty")
	s := New()
	res, err := s.Run(c, Options{InitialState: 0b101})
	if err != nil {
		t.Fatal(err)
	}
	if p := s.M.Probability(res.Final, 0b101, 3); math.Abs(p-1) > 1e-12 {
		t.Errorf("empty circuit moved the state: %v", p)
	}
	if res.MaxDDSize != 3 {
		t.Errorf("MaxDDSize %d, want 3", res.MaxDDSize)
	}
}

func TestInvalidStrategyConfig(t *testing.T) {
	c := circuit.New(2, "x")
	c.H(0)
	s := New()
	_, err := s.Run(c, Options{Strategy: &core.MemoryDriven{Threshold: -1, RoundFidelity: 0.9}})
	if err == nil {
		t.Error("invalid strategy accepted")
	}
}

func TestGHZFidelityDrivenNoOpOnTinyDD(t *testing.T) {
	// A GHZ circuit's DD stays tiny; fidelity-driven rounds find nothing to
	// remove and the final state must be exact.
	n := 10
	c := circuit.New(n, "ghz")
	c.H(n - 1)
	for q := n - 1; q > 0; q-- {
		c.CX(q, q-1)
	}
	cmp, err := RunAndCompare(c, Options{Strategy: core.NewFidelityDriven(0.5, 0.9)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cmp.TrueFidelity-1) > 1e-9 {
		t.Errorf("GHZ approximated although nothing is removable: F=%v", cmp.TrueFidelity)
	}
	if len(cmp.Approx.Rounds) != 0 {
		t.Errorf("no-op rounds recorded: %d", len(cmp.Approx.Rounds))
	}
}
