package sim

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/density"
	"repro/internal/gen"
)

// The entangled-pairs workload comes from pairsCircuit in
// differential_test.go — the same circuit the approximation differential
// suite uses.

func TestBackendValidation(t *testing.T) {
	if _, err := New().Run(gen.GHZ(3), Options{Backend: "tensor"}); err == nil {
		t.Error("unknown backend accepted")
	}
	_, err := New().Run(gen.GHZ(3), Options{
		Backend:  BackendDensity,
		Strategy: &core.MemoryDriven{Threshold: 16, RoundFidelity: 0.97},
	})
	if err == nil {
		t.Error("density backend accepted an approximation strategy")
	}
	if _, err := New().Run(gen.GHZ(3), Options{Noise: &NoiseModel{Kind: "banana", P: 0.1}}); err == nil {
		t.Error("unknown noise kind accepted")
	}
	if _, err := New().Run(gen.GHZ(3), Options{Noise: &NoiseModel{P: 1.5}}); err == nil {
		t.Error("out-of-range noise strength accepted")
	}
}

// TestNoiselessDensityMatchesStatevector is half of the tentpole's
// differential proof: with no noise, evolving ρ = |ψ⟩⟨ψ| through U ρ U†
// must reproduce the statevector backend's measurement probabilities.
func TestNoiselessDensityMatchesStatevector(t *testing.T) {
	workloads := []*circuit.Circuit{
		gen.QFT(6),
		pairsCircuit(6),
		gen.GHZ(6),
		gen.Grover(5, 0b10110, 2),
	}
	for _, c := range workloads {
		sv, err := New().Run(c, Options{})
		if err != nil {
			t.Fatalf("%s statevector: %v", c.Name, err)
		}
		den, err := New().Run(c, Options{Backend: BackendDensity})
		if err != nil {
			t.Fatalf("%s density: %v", c.Name, err)
		}
		if den.Backend != BackendDensity || den.Density == nil {
			t.Fatalf("%s: density result not populated (backend %q)", c.Name, den.Backend)
		}
		if math.Abs(den.Purity-1) > 1e-9 {
			t.Errorf("%s: noiseless purity = %v, want 1", c.Name, den.Purity)
		}
		for idx := uint64(0); idx < 1<<uint(c.NumQubits); idx++ {
			want := sv.Manager.Probability(sv.Final, idx, c.NumQubits)
			got := den.Density.Probability(idx)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%s: P(|%0*b⟩) density %v vs statevector %v",
					c.Name, c.NumQubits, idx, got, want)
			}
		}
	}
}

// densityFidelity runs the circuit noiselessly (statevector) and then
// noisily (density) on one manager and returns ⟨ideal|ρ|ideal⟩ — the exact
// value the trajectory estimator converges to.
func densityFidelity(t *testing.T, c *circuit.Circuit, noise NoiseModel) float64 {
	t.Helper()
	s := New()
	ideal, err := s.Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	den, err := s.Run(c, Options{
		Backend:   BackendDensity,
		Noise:     &noise,
		KeepAlive: []dd.VEdge{ideal.Final},
	})
	if err != nil {
		t.Fatal(err)
	}
	return den.Density.FidelityPure(ideal.Final)
}

// TestTrajectoryConvergesToDensity is the headline differential proof:
// trajectory-averaged fidelity converges to the density-matrix answer, for a
// mixed-unitary channel (depolarizing, pre-sampled branch probabilities) and
// a non-unitary one (amplitude damping, quantum-jump sampling), on the QFT
// and pairs workloads. The tolerance is statistical: the per-trajectory
// fidelities lie in [0, 1], so the Monte-Carlo mean carries a standard error
// estimated from the sample variance; five standard errors (plus a small
// absolute floor) makes the seeded test robust without hiding real bias.
func TestTrajectoryConvergesToDensity(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo convergence test")
	}
	workloads := []*circuit.Circuit{gen.QFT(5), pairsCircuit(6)}
	noises := []NoiseModel{
		{Kind: density.Depolarizing, P: 0.02, Seed: 11},
		{Kind: density.AmplitudeDamping, P: 0.03, Seed: 23},
	}
	const trajectories = 240
	for _, c := range workloads {
		for _, noise := range noises {
			exact := densityFidelity(t, c, noise)

			s := New()
			ideal, err := s.Run(c, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var sum, sumSq float64
			for k := 0; k < trajectories; k++ {
				tn := noise
				tn.Seed = noise.Seed + int64(k)*7919
				res, _, err := s.RunTrajectory(c, Options{KeepAlive: []dd.VEdge{ideal.Final}}, tn)
				if err != nil {
					t.Fatal(err)
				}
				f := s.M.Fidelity(ideal.Final, res.Final)
				sum += f
				sumSq += f * f
			}
			mean := sum / trajectories
			variance := sumSq/trajectories - mean*mean
			if variance < 0 {
				variance = 0
			}
			stderr := math.Sqrt(variance / trajectories)
			tol := 5*stderr + 2e-3
			if math.Abs(mean-exact) > tol {
				t.Errorf("%s %s p=%v: trajectory mean %v vs density %v (tolerance %v)",
					c.Name, noise.Kind, noise.P, mean, exact, tol)
			}
			if exact > 0.999 {
				t.Errorf("%s %s: density fidelity %v — noise did not engage", c.Name, noise.Kind, exact)
			}
		}
	}
}

// TestDensityCleanupKeepsRoots forces mid-run node-pool sweeps on the
// density backend and checks the run still matches an unswept one — the
// density root, gate DDs, and lifted channel DDs must all be mark roots.
func TestDensityCleanupKeepsRoots(t *testing.T) {
	c := gen.QFT(6)
	noise := NoiseModel{Kind: density.Depolarizing, P: 0.01}
	ref, err := New().Run(c, Options{Backend: BackendDensity, Noise: &noise})
	if err != nil {
		t.Fatal(err)
	}
	swept, err := New().Run(c, Options{
		Backend:          BackendDensity,
		Noise:            &noise,
		CleanupHighWater: 64, // far below any real occupancy: sweep almost every gate
	})
	if err != nil {
		t.Fatal(err)
	}
	if swept.Cleanups == 0 {
		t.Fatal("no cleanups triggered; test is vacuous")
	}
	for idx := uint64(0); idx < 1<<6; idx++ {
		if a, b := ref.Density.Probability(idx), swept.Density.Probability(idx); math.Abs(a-b) > 1e-12 {
			t.Fatalf("P(%d) diverged under cleanup: %v vs %v", idx, a, b)
		}
	}
	if math.Abs(ref.Purity-swept.Purity) > 1e-12 {
		t.Errorf("purity diverged under cleanup: %v vs %v", ref.Purity, swept.Purity)
	}
}

// TestDensityObserverEvents checks OnChannel fires once per touched qubit
// per gate on the density backend, and that trajectory jumps are reported
// with their sampled branch.
func TestDensityObserverEvents(t *testing.T) {
	c := pairsCircuit(4)
	noise := NoiseModel{Kind: density.Depolarizing, P: 0.05}
	obs := &countingObserver{}
	res, err := New().Run(c, Options{Backend: BackendDensity, Noise: &noise, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	wantApps := 0
	for _, g := range c.Gates() {
		wantApps += len(gateTouches(g))
	}
	if obs.channels != wantApps || res.ChannelApplications != wantApps {
		t.Errorf("channel events: observer %d, result %d, want %d", obs.channels, res.ChannelApplications, wantApps)
	}
	if obs.lastChannel.Branch != -1 || obs.lastChannel.Kind != string(density.Depolarizing) {
		t.Errorf("density channel event = %+v, want branch -1 kind depolarizing", obs.lastChannel)
	}

	// Trajectory at p=1: every touched qubit jumps (branch ≥ 1).
	obs2 := &countingObserver{}
	traj, err := New().Run(c, Options{
		Noise:    &NoiseModel{Kind: density.BitFlip, P: 1, Seed: 3},
		Observer: obs2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs2.channels != wantApps || traj.ChannelApplications != wantApps {
		t.Errorf("jump events at p=1: observer %d, result %d, want %d", obs2.channels, traj.ChannelApplications, wantApps)
	}
	if obs2.lastChannel.Branch < 1 {
		t.Errorf("trajectory jump event branch = %d, want >= 1", obs2.lastChannel.Branch)
	}
}

// TestDensityMeasurement runs mid-circuit measurement and reset on the
// density backend and checks the collapsed state is consistent.
func TestDensityMeasurement(t *testing.T) {
	c := circuit.New(2, "bell_measured")
	c.H(0)
	c.CX(0, 1)
	c.Measure(0)
	for seed := int64(0); seed < 6; seed++ {
		res, err := New().Run(c, Options{Backend: BackendDensity, MeasurementSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Measurements) != 1 {
			t.Fatalf("recorded %d measurements", len(res.Measurements))
		}
		bit := res.Measurements[0].Outcome
		// Post-measurement the pair is perfectly correlated: P(bb) = 1.
		idx := uint64(bit) | uint64(bit)<<1
		if p := res.Density.Probability(idx); math.Abs(p-1) > 1e-9 {
			t.Errorf("seed %d: P(|%d%d⟩) = %v after measuring %d", seed, bit, bit, p, bit)
		}
		if math.Abs(res.Purity-1) > 1e-9 {
			t.Errorf("seed %d: purity after projective measurement = %v", seed, res.Purity)
		}
	}
}

// TestDensitySessionStepping drives the density backend through the
// resumable-session API rather than Run.
func TestDensitySessionStepping(t *testing.T) {
	c := gen.QFT(5)
	noise := NoiseModel{Kind: density.Dephasing, P: 0.02}
	ref, err := New().Run(c, Options{Backend: BackendDensity, Noise: &noise})
	if err != nil {
		t.Fatal(err)
	}
	ses, err := NewSession(c, Options{Backend: BackendDensity, Noise: &noise})
	if err != nil {
		t.Fatal(err)
	}
	if ses.Density() == nil {
		t.Fatal("session has no density state")
	}
	if _, err := ses.StepN(3); err != nil {
		t.Fatal(err)
	}
	got, err := ses.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for idx := uint64(0); idx < 1<<5; idx++ {
		if a, b := ref.Density.Probability(idx), got.Density.Probability(idx); math.Abs(a-b) > 1e-12 {
			t.Fatalf("P(%d): run %v vs session %v", idx, a, b)
		}
	}
}
