// Package sim drives DD-based quantum circuit simulation with optional
// approximation (Section IV of the paper).
//
// The unit of execution is the Session: a resumable gate-level stepper that
// constructs the initial basis state, applies gates by DD matrix-vector
// multiplication, and consults the configured approximation strategy after
// every gate. Callers either run a circuit end to end (Run is a thin,
// allocation-neutral loop over a Session) or drive it explicitly —
// Step/StepN/Seek between gates, State to inspect the live DD, Abort to
// release pooled nodes early, Finish for the Result. Instrumentation records
// the paper's metrics: maximum DD size over the run, approximation rounds,
// and the fidelity accounting of Lemma 1, plus the DD memory-system
// counters (Result.DDStats, Result.WeightTable).
//
// Options.Observer (core.Observer) streams lifecycle events — per-gate
// sizes, approximation rounds, node-pool cleanups, completion — to the
// caller as the run executes; the HTTP service forwards them as per-job SSE
// streams. Options are built either as a struct literal or with the
// functional options in options.go (WithStrategy, WithObserver,
// WithDeadline, ...), which the root package re-exports.
//
// Runs are interruptible between gates through one unified mechanism: an
// Options.Deadline derives a context (carrying ErrDeadlineExceeded as its
// cancellation cause, the paper's timeout column) from Options.Context (how
// the batch engine and the HTTP service abort in-flight work), and the
// session checks that single context between gates. Mid-circuit measurement
// and reset are deterministic per Options.MeasurementSeed. A Simulator owns
// one dd.Manager whose node pools are swept on occupancy pressure during
// the run (Options.CleanupHighWater) and recycled wholesale between runs by
// Recycle; state edges that must survive a later run's sweeps are protected
// with Options.KeepAlive.
//
// RunAndCompare executes a circuit exactly and approximately inside one
// manager and measures the true fidelity between the final states — the
// paper's empirical validation, and the source of the Table I true-fidelity
// column.
package sim
