// Package sim drives DD-based quantum circuit simulation with optional
// approximation (Section IV of the paper).
//
// A simulation run constructs the initial basis state, applies the circuit's
// gates by DD matrix-vector multiplication, and consults the configured
// approximation strategy after every gate. Instrumentation records the
// paper's metrics: maximum DD size over the run, approximation rounds, and
// the fidelity accounting of Lemma 1, plus the DD memory-system counters
// (Result.DDStats, Result.WeightTable).
//
// Runs are interruptible between gates through two independent mechanisms —
// Options.Deadline (the paper's timeout column; returns
// ErrDeadlineExceeded) and Options.Context (how the batch engine and the
// HTTP service abort in-flight work). Mid-circuit measurement and reset are
// deterministic per Options.MeasurementSeed. A Simulator owns one dd.Manager
// whose node pools are swept on occupancy pressure during the run
// (Options.CleanupHighWater) and recycled wholesale between runs by
// Recycle; state edges that must survive a later run's sweeps are protected
// with Options.KeepAlive.
//
// RunAndCompare executes a circuit exactly and approximately inside one
// manager and measures the true fidelity between the final states — the
// paper's empirical validation, and the source of the Table I true-fidelity
// column.
package sim
