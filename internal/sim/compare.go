package sim

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Comparison relates an approximate simulation to the exact reference on the
// same circuit, as the paper's empirical validation does.
type Comparison struct {
	Exact  *Result
	Approx *Result
	// TrueFidelity is |⟨exact|approx⟩|², measured directly between the two
	// final states.
	TrueFidelity float64
	// EstimateError is |TrueFidelity − Π round fidelities|. Lemma 1 makes
	// the product exact for the hierarchical truncations of Section V; with
	// unitaries between rounds the product is the paper's tracked estimate,
	// whose deviation this field measures.
	EstimateError float64
	// SizeReduction is exact max DD size / approx max DD size.
	SizeReduction float64
	// Speedup is exact runtime / approx runtime.
	Speedup float64
}

// RunAndCompare simulates the circuit exactly and with the provided options'
// strategy, inside one manager, and measures the true final fidelity. Only
// feasible where the exact simulation itself is feasible.
func RunAndCompare(c *circuit.Circuit, opts Options) (*Comparison, error) {
	s := New()
	exact, err := s.Run(c, Options{InitialState: opts.InitialState})
	if err != nil {
		return nil, fmt.Errorf("sim: exact reference run: %w", err)
	}
	// The approximate run shares the manager: keep the exact final state
	// out of the node pool's reach while it executes.
	opts.KeepAlive = append(opts.KeepAlive, exact.Final)
	approx, err := s.Run(c, opts)
	if err != nil {
		return nil, fmt.Errorf("sim: approximate run: %w", err)
	}
	f := s.M.Fidelity(exact.Final, approx.Final)
	cmp := &Comparison{
		Exact:         exact,
		Approx:        approx,
		TrueFidelity:  f,
		EstimateError: math.Abs(f - approx.EstimatedFidelity),
	}
	if approx.MaxDDSize > 0 {
		cmp.SizeReduction = float64(exact.MaxDDSize) / float64(approx.MaxDDSize)
	}
	if approx.Runtime > 0 {
		cmp.Speedup = float64(exact.Runtime) / float64(approx.Runtime)
	}
	return cmp, nil
}
