package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gen"
)

// measurementCircuit interleaves unitaries with mid-circuit measurement and
// reset so the seeded RNG path is exercised.
func measurementCircuit(n int) *circuit.Circuit {
	c := circuit.New(n, "measured")
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.Measure(0)
	c.CX(0, 1)
	c.T(2)
	c.Reset(1)
	c.H(1)
	c.CX(n-1, n-2)
	c.Measure(n - 1)
	c.RZ(0.37, 2)
	return c
}

// resultsEqual compares everything deterministic about two results from
// fresh managers: final amplitudes bit-for-bit plus every simulation-derived
// Result field (timing and manager identity aside).
func resultsEqual(t *testing.T, name string, a, b *Result) {
	t.Helper()
	va := a.Manager.ToVector(a.Final, a.NumQubits)
	vb := b.Manager.ToVector(b.Final, b.NumQubits)
	if !reflect.DeepEqual(va, vb) {
		t.Fatalf("%s: final amplitudes differ", name)
	}
	if a.MaxDDSize != b.MaxDDSize || a.FinalDDSize != b.FinalDDSize {
		t.Errorf("%s: sizes differ: max %d/%d final %d/%d", name, a.MaxDDSize, b.MaxDDSize, a.FinalDDSize, b.FinalDDSize)
	}
	if a.GateCount != b.GateCount || a.Cleanups != b.Cleanups || a.StrategyName != b.StrategyName {
		t.Errorf("%s: run shape differs: gates %d/%d cleanups %d/%d strategy %q/%q",
			name, a.GateCount, b.GateCount, a.Cleanups, b.Cleanups, a.StrategyName, b.StrategyName)
	}
	if a.EstimatedFidelity != b.EstimatedFidelity || a.FidelityBound != b.FidelityBound {
		t.Errorf("%s: fidelity accounting differs: %v/%v bound %v/%v",
			name, a.EstimatedFidelity, b.EstimatedFidelity, a.FidelityBound, b.FidelityBound)
	}
	if !reflect.DeepEqual(a.Rounds, b.Rounds) {
		t.Errorf("%s: rounds differ: %v vs %v", name, a.Rounds, b.Rounds)
	}
	if !reflect.DeepEqual(a.Measurements, b.Measurements) {
		t.Errorf("%s: measurements differ: %v vs %v", name, a.Measurements, b.Measurements)
	}
	if !reflect.DeepEqual(a.SizeHistory, b.SizeHistory) {
		t.Errorf("%s: size histories differ", name)
	}
}

func sessionWorkloads() []struct {
	name string
	c    *circuit.Circuit
	opts Options
} {
	return []struct {
		name string
		c    *circuit.Circuit
		opts Options
	}{
		{"qft10_exact", gen.QFT(10), Options{CollectSizeHistory: true}},
		{"qft10_memory", gen.QFT(10), Options{
			Strategy:           &core.MemoryDriven{Threshold: 24, RoundFidelity: 0.97},
			CollectSizeHistory: true,
		}},
		{"grover9", gen.Grover(9, 0b101010101, 3), Options{
			Strategy: &core.MemoryDriven{Threshold: 16, RoundFidelity: 0.98},
		}},
		{"measured6", measurementCircuit(6), Options{}},
	}
}

// freshStrategy deep-copies a strategy config so each run gets its own
// stateful instance.
func freshStrategy(s core.Strategy) core.Strategy {
	switch st := s.(type) {
	case nil:
		return nil
	case *core.MemoryDriven:
		cp := *st
		return &cp
	case *core.FidelityDriven:
		cp := *st
		return &cp
	default:
		return s
	}
}

func TestSessionFinishMatchesRun(t *testing.T) {
	for _, w := range sessionWorkloads() {
		for _, seed := range []int64{1, 7, 42} {
			opts := w.opts
			opts.MeasurementSeed = seed
			opts.Strategy = freshStrategy(w.opts.Strategy)
			ref, err := New().Run(w.c, opts)
			if err != nil {
				t.Fatalf("%s seed %d: run: %v", w.name, seed, err)
			}

			opts.Strategy = freshStrategy(w.opts.Strategy)
			ses, err := NewSession(w.c, opts)
			if err != nil {
				t.Fatalf("%s seed %d: session: %v", w.name, seed, err)
			}
			got, err := ses.Finish()
			if err != nil {
				t.Fatalf("%s seed %d: finish: %v", w.name, seed, err)
			}
			resultsEqual(t, w.name, ref, got)
		}
	}
}

func TestSessionStepByStepMatchesRun(t *testing.T) {
	for _, w := range sessionWorkloads() {
		opts := w.opts
		opts.MeasurementSeed = 7
		opts.Strategy = freshStrategy(w.opts.Strategy)
		ref, err := New().Run(w.c, opts)
		if err != nil {
			t.Fatalf("%s: run: %v", w.name, err)
		}

		opts.Strategy = freshStrategy(w.opts.Strategy)
		ses, err := NewSession(w.c, opts)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for {
			err := ses.Step()
			if errors.Is(err, ErrSessionDone) {
				break
			}
			if err != nil {
				t.Fatalf("%s: step %d: %v", w.name, steps, err)
			}
			steps++
			if ses.Pos() != steps {
				t.Fatalf("%s: Pos %d after %d steps", w.name, ses.Pos(), steps)
			}
		}
		if steps != w.c.Len() {
			t.Fatalf("%s: stepped %d of %d gates", w.name, steps, w.c.Len())
		}
		got, err := ses.Finish()
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, w.name, ref, got)

		// Finish is idempotent.
		again, err := ses.Finish()
		if err != nil || again != got {
			t.Fatalf("%s: second Finish: (%p, %v), want same result", w.name, again, err)
		}
	}
}

func TestSessionStepNAndSeekMatchRun(t *testing.T) {
	for _, w := range sessionWorkloads() {
		opts := w.opts
		opts.MeasurementSeed = 42
		opts.Strategy = freshStrategy(w.opts.Strategy)
		ref, err := New().Run(w.c, opts)
		if err != nil {
			t.Fatalf("%s: run: %v", w.name, err)
		}

		// StepN in uneven chunks.
		opts.Strategy = freshStrategy(w.opts.Strategy)
		ses, err := NewSession(w.c, opts)
		if err != nil {
			t.Fatal(err)
		}
		for ses.Remaining() > 0 {
			if _, err := ses.StepN(3); err != nil {
				t.Fatalf("%s: StepN: %v", w.name, err)
			}
		}
		if n, err := ses.StepN(5); n != 0 || !errors.Is(err, ErrSessionDone) {
			t.Fatalf("%s: StepN past end: (%d, %v), want (0, ErrSessionDone)", w.name, n, err)
		}
		got, err := ses.Finish()
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, w.name+"/stepN", ref, got)

		// Seek to the midpoint, then Finish.
		opts.Strategy = freshStrategy(w.opts.Strategy)
		ses, err = NewSession(w.c, opts)
		if err != nil {
			t.Fatal(err)
		}
		mid := w.c.Len() / 2
		if err := ses.Seek(mid); err != nil {
			t.Fatalf("%s: seek: %v", w.name, err)
		}
		if ses.Pos() != mid {
			t.Fatalf("%s: Pos %d after Seek(%d)", w.name, ses.Pos(), mid)
		}
		got, err = ses.Finish()
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, w.name+"/seek", ref, got)
	}
}

func TestSessionSeekValidation(t *testing.T) {
	ses, err := NewSession(gen.QFT(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Seek(5); err != nil {
		t.Fatal(err)
	}
	if err := ses.Seek(2); err == nil {
		t.Error("backward seek accepted")
	}
	if err := ses.Seek(10_000); err == nil {
		t.Error("seek past circuit end accepted")
	}
	// Validation errors must not kill the session.
	if _, err := ses.Finish(); err != nil {
		t.Fatalf("session dead after rejected seeks: %v", err)
	}
}

func TestSessionAbortReleasesPooledNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := randomCircuit(10, 150, rng)
	s := New()
	ses, err := s.NewSession(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.StepN(100); err != nil {
		t.Fatal(err)
	}
	midRun := s.M.Pool().Live
	if midRun == 0 {
		t.Fatal("no live nodes mid-run; test is vacuous")
	}
	ses.Abort()
	afterAbort := s.M.Pool().Live
	// The manager keeps a few internal nodes alive through any sweep; the
	// floor is whatever a full rootless Recycle leaves, and Abort must
	// reach exactly that floor.
	s.Recycle()
	floor := s.M.Pool().Live
	if afterAbort != floor {
		t.Errorf("Abort left %d pooled nodes live (mid-run %d, recycle floor %d)", afterAbort, midRun, floor)
	}
	if err := ses.Step(); !errors.Is(err, ErrSessionAborted) {
		t.Errorf("Step after Abort: %v, want ErrSessionAborted", err)
	}
	if _, err := ses.Finish(); !errors.Is(err, ErrSessionAborted) {
		t.Errorf("Finish after Abort: %v, want ErrSessionAborted", err)
	}

	// The manager is reusable after an abort.
	if _, err := s.Run(gen.GHZ(5), Options{}); err != nil {
		t.Fatalf("manager unusable after Abort: %v", err)
	}
}

func TestSessionAbortKeepsKeepAliveRoots(t *testing.T) {
	s := New()
	ref, err := s.Run(gen.GHZ(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := s.M.ToVector(ref.Final, 8)
	ses, err := s.NewSession(gen.QFT(8), Options{KeepAlive: []dd.VEdge{ref.Final}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.StepN(20); err != nil {
		t.Fatal(err)
	}
	ses.Abort()
	if got := s.M.ToVector(ref.Final, 8); !reflect.DeepEqual(want, got) {
		t.Error("KeepAlive state clobbered by Abort's sweep")
	}
}

// countingObserver records the event stream.
type countingObserver struct {
	gates, rounds, cleanups, reorders, finishes int
	channels                                    int
	lastChannel                                 core.ChannelEvent
	lastGate                                    core.GateEvent
	lastReorder                                 core.ReorderEvent
	finish                                      core.FinishEvent
}

func (o *countingObserver) OnGate(e core.GateEvent)       { o.gates++; o.lastGate = e }
func (o *countingObserver) OnApproximation(r core.Round)  { o.rounds++ }
func (o *countingObserver) OnCleanup(e core.CleanupEvent) { o.cleanups++ }
func (o *countingObserver) OnReorder(e core.ReorderEvent) { o.reorders++; o.lastReorder = e }
func (o *countingObserver) OnChannel(e core.ChannelEvent) { o.channels++; o.lastChannel = e }
func (o *countingObserver) OnFinish(e core.FinishEvent)   { o.finishes++; o.finish = e }

func TestObserverSeesEveryEvent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := randomCircuit(8, 120, rng)
	obs := &countingObserver{}
	s := New()
	res, err := s.Run(c, Options{
		Strategy:         &core.MemoryDriven{Threshold: 16, RoundFidelity: 0.98},
		CleanupHighWater: 2000,
		Observer:         obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.gates != c.Len() {
		t.Errorf("OnGate fired %d times for %d gates", obs.gates, c.Len())
	}
	if obs.rounds != len(res.Rounds) {
		t.Errorf("OnApproximation fired %d times for %d rounds", obs.rounds, len(res.Rounds))
	}
	if obs.rounds == 0 {
		t.Error("workload never approximated; event test is vacuous")
	}
	if obs.cleanups != res.Cleanups {
		t.Errorf("OnCleanup fired %d times for %d cleanups", obs.cleanups, res.Cleanups)
	}
	if obs.finishes != 1 {
		t.Errorf("OnFinish fired %d times", obs.finishes)
	}
	if obs.finish.GatesApplied != c.Len() || obs.finish.Err != nil || obs.finish.Aborted {
		t.Errorf("finish event wrong: %+v", obs.finish)
	}
	if obs.finish.EstimatedFidelity != res.EstimatedFidelity {
		t.Errorf("finish fidelity %v != result %v", obs.finish.EstimatedFidelity, res.EstimatedFidelity)
	}
	if obs.lastGate.Index != c.Len()-1 {
		t.Errorf("last gate event index %d", obs.lastGate.Index)
	}
}

func TestObserverOnFinishFiresOnAbortAndError(t *testing.T) {
	obs := &countingObserver{}
	ses, err := NewSession(gen.QFT(8), Options{Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.StepN(10); err != nil {
		t.Fatal(err)
	}
	ses.Abort()
	ses.Abort() // idempotent
	if obs.finishes != 1 || !obs.finish.Aborted || obs.finish.GatesApplied != 10 {
		t.Errorf("abort finish event: count %d, %+v", obs.finishes, obs.finish)
	}

	obs = &countingObserver{}
	strat := &core.MemoryDriven{Threshold: 8, RoundFidelity: 0.9}
	ses, err = NewSession(gen.QFT(8), Options{Observer: obs, Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	strat.RoundFidelity = -1 // sabotage mid-run so AfterGate errors
	_, ferr := ses.Finish()
	if ferr == nil {
		t.Skip("sabotaged strategy did not error; layout changed")
	}
	if obs.finishes != 1 || obs.finish.Err == nil {
		t.Errorf("error finish event: count %d, %+v", obs.finishes, obs.finish)
	}
}

func TestFunctionalOptionsBuildOptions(t *testing.T) {
	strat := &core.MemoryDriven{Threshold: 32, RoundFidelity: 0.95}
	obs := &countingObserver{}
	o := NewOptions(
		WithStrategy(strat),
		WithObserver(obs),
		WithSeed(99),
		WithInitialState(5),
		WithSizeHistory(),
		WithCleanupHighWater(1234),
	)
	if o.Strategy != core.Strategy(strat) || o.Observer != core.Observer(obs) {
		t.Error("strategy/observer option not applied")
	}
	if o.MeasurementSeed != 99 || o.InitialState != 5 || !o.CollectSizeHistory || o.CleanupHighWater != 1234 {
		t.Errorf("options not applied: %+v", o)
	}

	res, err := New().Run(measurementCircuit(5), NewOptions(WithSeed(3)))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New().Run(measurementCircuit(5), Options{MeasurementSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "functional-options", ref, res)
}

func TestSessionDeadlineUnifiedWithContext(t *testing.T) {
	// Both abort paths flow through the single context check: an expired
	// deadline surfaces as ErrDeadlineExceeded even when a live Context is
	// also set.
	ses, err := NewSession(gen.QFT(8), NewOptions(
		WithContext(t.Context()),
		WithDeadline(time.Now().Add(-time.Second)),
	))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ses.Finish()
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("got %v, want ErrDeadlineExceeded", err)
	}
}
