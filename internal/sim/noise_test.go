package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestZeroNoiseIsExact(t *testing.T) {
	s := New()
	res, errs, err := s.RunTrajectory(gen.GHZ(5), Options{}, NoiseModel{})
	if err != nil {
		t.Fatal(err)
	}
	if errs != 0 {
		t.Errorf("%d errors injected at p=0", errs)
	}
	if p := s.M.Probability(res.Final, 0, 5); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("GHZ P(|00000⟩) = %v", p)
	}
}

func TestNoiseValidation(t *testing.T) {
	s := New()
	if _, _, err := s.RunTrajectory(gen.GHZ(3), Options{}, NoiseModel{P: 1.5}); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, _, err := s.RunTrajectory(gen.GHZ(3), Options{}, NoiseModel{P: -0.1}); err == nil {
		t.Error("p < 0 accepted")
	}
	if _, err := TrajectoryFidelity(gen.GHZ(3), NoiseModel{P: 0.01}, 0); err == nil {
		t.Error("zero trajectories accepted")
	}
}

func TestNoiseInjectsErrorsDeterministically(t *testing.T) {
	c := gen.RandomCliffordT(4, 80, 1)
	s1 := New()
	_, errs1, err := s1.RunTrajectory(c, Options{}, NoiseModel{P: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if errs1 == 0 {
		t.Fatal("no errors injected at p=0.05 over ~120 gate-qubit slots")
	}
	s2 := New()
	_, errs2, err := s2.RunTrajectory(c, Options{}, NoiseModel{P: 0.05, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if errs1 != errs2 {
		t.Errorf("same seed injected %d vs %d errors", errs1, errs2)
	}
}

func TestTrajectoryFidelityDecreasesWithNoise(t *testing.T) {
	c := gen.GHZ(6)
	fLow, err := TrajectoryFidelity(c, NoiseModel{P: 0.002, Seed: 1}, 12)
	if err != nil {
		t.Fatal(err)
	}
	fHigh, err := TrajectoryFidelity(c, NoiseModel{P: 0.2, Seed: 1}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if fLow < 0.85 {
		t.Errorf("fidelity at p=0.002 suspiciously low: %v", fLow)
	}
	if fHigh >= fLow {
		t.Errorf("fidelity did not decrease with noise: %v -> %v", fLow, fHigh)
	}
}

func TestNoisyTrajectoryWithApproximation(t *testing.T) {
	// Noise and approximation compose: the run must respect the fidelity
	// bookkeeping of the approximation strategy regardless of the injected
	// errors.
	c := gen.RandomCliffordT(8, 150, 3)
	s := New()
	res, _, err := s.RunTrajectory(c, Options{
		Strategy: &core.MemoryDriven{Threshold: 16, RoundFidelity: 0.97},
	}, NoiseModel{P: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatedFidelity < res.FidelityBound-1e-9 {
		t.Errorf("tracking broken under noise: %v < %v",
			res.EstimatedFidelity, res.FidelityBound)
	}
}
