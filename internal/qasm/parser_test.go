package qasm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

const bellSrc = `
OPENQASM 2.0;
include "qelib1.inc";
// Bell pair
qreg q[2];
creg c[2];
h q[1];
cx q[1], q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
`

func TestParseBell(t *testing.T) {
	prog, err := Parse(bellSrc, "bell")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumQubits != 2 {
		t.Fatalf("qubits %d", prog.Circuit.NumQubits)
	}
	if prog.Circuit.Len() != 2 {
		t.Fatalf("gates %d, want 2 (measures are not gates)", prog.Circuit.Len())
	}
	if len(prog.Measurements) != 2 {
		t.Fatalf("measurements %d", len(prog.Measurements))
	}
	s := sim.New()
	res, err := s.Run(prog.Circuit, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p00 := s.M.Probability(res.Final, 0b00, 2)
	p11 := s.M.Probability(res.Final, 0b11, 2)
	if math.Abs(p00-0.5) > 1e-9 || math.Abs(p11-0.5) > 1e-9 {
		t.Errorf("Bell probabilities %v %v", p00, p11)
	}
}

func TestParseParameterExpressions(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg q[1];
rz(pi/2) q[0];
rx(-pi/4) q[0];
u3(pi/2, 0, pi) q[0];
p(2*pi - pi/3) q[0];
ry((1+2)*0.5) q[0];
`
	prog, err := Parse(src, "params")
	if err != nil {
		t.Fatal(err)
	}
	gates := prog.Circuit.Gates()
	if gates[0].Params[0] != math.Pi/2 {
		t.Errorf("rz param %v", gates[0].Params[0])
	}
	if gates[1].Params[0] != -math.Pi/4 {
		t.Errorf("rx param %v", gates[1].Params[0])
	}
	if got := gates[3].Params[0]; math.Abs(got-(2*math.Pi-math.Pi/3)) > 1e-15 {
		t.Errorf("p param %v", got)
	}
	if got := gates[4].Params[0]; got != 1.5 {
		t.Errorf("ry param %v", got)
	}
}

func TestParseMultiRegister(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg a[2];
qreg b[3];
x a[1];
cx a[0], b[2];
`
	prog, err := Parse(src, "multi")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumQubits != 5 {
		t.Fatalf("qubits %d", prog.Circuit.NumQubits)
	}
	// b[2] is flat qubit 2+2=4.
	g := prog.Circuit.Gates()[1]
	if g.Target != 4 || g.Controls[0].Qubit != 0 {
		t.Errorf("cx mapped to target %d control %d", g.Target, g.Controls[0].Qubit)
	}
}

func TestParseControlledAndCompound(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg q[3];
ccx q[0], q[1], q[2];
swap q[0], q[2];
cswap q[2], q[0], q[1];
cp(pi/8) q[1], q[0];
barrier q;
cz q[0], q[1];
`
	prog, err := Parse(src, "compound")
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	if len(c.Blocks()) != 1 {
		t.Errorf("barrier not mapped to block: %v", c.Blocks())
	}
	counts := c.CountByName()
	// ccx → 1 x-with-2-controls; swap → 3 cx; cswap → 3 ccx; cp → p; cz → z.
	if counts["x"] != 1+3+3 || counts["p"] != 1 || counts["z"] != 1 {
		t.Errorf("gate counts %v", counts)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no qreg":         `OPENQASM 2.0; x q[0];`,
		"bad index":       "qreg q[2];\nx q[5];",
		"unknown gate":    "qreg q[1];\nfrob q[0];",
		"missing semi":    "qreg q[1];\nx q[0]",
		"unknown reg":     "qreg q[1];\nx r[0];",
		"custom gate":     "qreg q[1];\ngate foo a { x a; }",
		"div by zero":     "qreg q[1];\nrz(1/0) q[0];",
		"unterm string":   `include "qelib;`,
		"dup qreg":        "qreg q[1];\nqreg q[2];",
		"zero size":       "qreg q[0];",
		"measure bad dst": "qreg q[1];\ncreg c[1];\nmeasure q[0] -> d[0];",
	}
	for name, src := range cases {
		if _, err := Parse(src, "t"); err == nil {
			t.Errorf("%s: accepted invalid program", name)
		}
	}
}

func TestLexerLineTracking(t *testing.T) {
	src := "qreg q[1];\n\n\nx q[5];"
	_, err := Parse(src, "t")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %v does not point to line 4", err)
	}
}

func TestParsedCircuitMatchesHandBuilt(t *testing.T) {
	src := `
OPENQASM 2.0;
qreg q[3];
h q[0];
h q[1];
h q[2];
cz q[0], q[1];
t q[2];
sdg q[0];
`
	prog, err := Parse(src, "hand")
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	res, err := s.Run(prog.Circuit, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built equivalent through the circuit API.
	hand := circuit.New(3, "hand")
	hand.H(0)
	hand.H(1)
	hand.H(2)
	hand.CZ(0, 1)
	hand.T(2)
	hand.Sdg(0)
	s2 := sim.New()
	res2, err := s2.Run(hand, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cross-manager comparison via amplitude vectors.
	v1 := s.M.ToVector(res.Final, 3)
	v2 := s2.M.ToVector(res2.Final, 3)
	for i := range v1 {
		if cmplxAbs(v1[i]-v2[i]) > 1e-12 {
			t.Fatalf("parsed circuit diverges from hand-built at amplitude %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

func cmplxAbs(c complex128) float64 {
	return math.Hypot(real(c), imag(c))
}
