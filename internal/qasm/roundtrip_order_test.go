package qasm

import (
	"bytes"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

// These tests pin QASM round-trip behavior for circuits whose declared qubit
// order differs from the order gates first touch the register — the case the
// variable-reordering layer makes observable: if parsing or export
// renumbered qubits by first use, a "scored" ordering computed from the
// parsed circuit would target the wrong wires.

// declarationVsUseCircuit touches qubits strictly out of declaration order:
// the highest wire first, the lowest last, with cross-register couplings.
func declarationVsUseCircuit() *circuit.Circuit {
	c := circuit.New(5, "decl_vs_use")
	c.H(4)
	c.CX(4, 1)
	c.T(3)
	c.CX(3, 0)
	c.CZ(1, 2)
	c.RZ(0.25, 0)
	return c
}

const declVsUseQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[4];
cx q[4],q[1];
t q[3];
cx q[3],q[0];
cz q[1],q[2];
rz(0.25) q[0];
`

// TestParsePreservesDeclaredIndices: gate operands must keep their declared
// register indices even when first use order is reversed.
func TestParsePreservesDeclaredIndices(t *testing.T) {
	prog, err := Parse(declVsUseQASM, "decl_vs_use")
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Circuit
	if c.NumQubits != 5 {
		t.Fatalf("NumQubits = %d, want 5", c.NumQubits)
	}
	gates := c.Gates()
	if gates[0].Target != 4 {
		t.Fatalf("first gate targets q%d, want q4 (first-use renumbering?)", gates[0].Target)
	}
	if gates[1].Target != 1 || len(gates[1].Controls) != 1 || gates[1].Controls[0].Qubit != 4 {
		t.Fatalf("cx parsed as %+v, want control q4 target q1", gates[1])
	}
	if gates[3].Target != 0 || gates[3].Controls[0].Qubit != 3 {
		t.Fatalf("second cx parsed as %+v, want control q3 target q0", gates[3])
	}
}

// TestRoundTripDeclarationVsUseOrder: export → parse must reproduce the
// canonical encoding exactly for out-of-declaration-order circuits.
func TestRoundTripDeclarationVsUseOrder(t *testing.T) {
	orig := declarationVsUseCircuit()
	src, err := Export(orig)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(src, orig.Name)
	if err != nil {
		t.Fatalf("re-parsing exported QASM: %v\n%s", err, src)
	}
	// The canonical encoding embeds the name; compare structure by giving
	// both the same name.
	prog.Circuit.Name = orig.Name
	a := orig.AppendCanonical(nil)
	b := prog.Circuit.AppendCanonical(nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical encodings differ after round trip\noriginal:\n%q\nreparsed:\n%q\nsource:\n%s", a, b, src)
	}
}

// TestRoundTripUnusedAndGapQubits: wires the gate list never touches (q2
// here) and gaps in use order must survive a round trip — reordering
// heuristics must see them as isolated qubits, not lose them.
func TestRoundTripUnusedAndGapQubits(t *testing.T) {
	c := circuit.New(4, "gaps")
	c.H(3)
	c.CX(3, 0)
	// q1, q2 untouched.
	src, err := Export(c)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(src, c.Name)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Circuit.NumQubits != 4 {
		t.Fatalf("round trip shrank the register to %d qubits", prog.Circuit.NumQubits)
	}
}

// TestRoundTripSimulatesIdenticallyUnderReorder is the end-to-end guarantee:
// original and round-tripped circuits must produce identical amplitudes
// under the scored ordering (which depends on gate-qubit structure and would
// diverge if the round trip relabeled anything).
func TestRoundTripSimulatesIdenticallyUnderReorder(t *testing.T) {
	orig := declarationVsUseCircuit()
	src, err := Export(orig)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(src, orig.Name)
	if err != nil {
		t.Fatal(err)
	}
	run := func(c *circuit.Circuit) []complex128 {
		st, err := core.NewStrategyByName("reorder", []byte(`{"order":"scored"}`))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.New().Run(c, sim.Options{Strategy: st})
		if err != nil {
			t.Fatal(err)
		}
		return res.Manager.ToVector(res.Final, c.NumQubits)
	}
	want, got := run(orig), run(prog.Circuit)
	for i := range want {
		if d := cmplx.Abs(want[i] - got[i]); d > 1e-12 {
			t.Fatalf("amplitude[%d] differs by %g after round trip under scored order", i, d)
		}
	}
}

// TestBarrierPositionsSurviveUseOrder: block boundaries recorded between
// out-of-order gate uses must land on the same gate indices after a round
// trip (the fidelity-driven strategy schedules rounds there).
func TestBarrierPositionsSurviveUseOrder(t *testing.T) {
	c := circuit.New(3, "barriers")
	c.H(2)
	c.CX(2, 0)
	c.EndBlock()
	c.T(1)
	c.CZ(0, 1)
	c.EndBlock()
	src, err := Export(c)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(src, c.Name)
	if err != nil {
		t.Fatal(err)
	}
	want, got := c.Blocks(), prog.Circuit.Blocks()
	if len(want) != len(got) {
		t.Fatalf("blocks %v -> %v", want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("blocks %v -> %v", want, got)
		}
	}
}
