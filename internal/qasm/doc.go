// Package qasm parses a practical subset of OpenQASM 2.0 into the circuit
// IR, so externally produced benchmark circuits can be simulated, and
// exports circuits back to OpenQASM source (Export), round-tripping through
// the same gate set.
//
// Supported: OPENQASM/include headers, qreg/creg declarations, the standard
// gate set (x y z h s sdg t tdg sx id, rx ry rz p u1 u2 u3 u, cx cz cp cu1
// ccx swap cswap), barrier (mapped to block boundaries, which steer
// fidelity-driven approximation placement), measure (recorded but not
// simulated), and constant parameter expressions with pi, + - * /, unary
// minus and parentheses.
//
// This parser is also the simulation service's QASM front door: a POST to
// /v1/jobs with a qasm body goes through Parse, so service submissions and
// library callers agree on the IR — and therefore on result-cache content
// hashes.
package qasm
