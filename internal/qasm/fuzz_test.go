package qasm

import (
	"bytes"
	"testing"
)

// fuzzSeeds covers the supported statement surface plus the malformed shapes
// that used to panic the parser: wrong gate arity, wrong parameter counts,
// repeated operands, zero-size and overflowing registers.
var fuzzSeeds = []string{
	"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\n" +
		"h q[0];\ncx q[0], q[1];\nrz(pi/4) q[2];\nu3(0.1,0.2,0.3) q[3];\n" +
		"barrier q;\nccx q[0], q[1], q[2];\nswap q[2], q[3];\nmeasure q[0] -> c[0];\n",
	"OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncp(pi/2) a[0], b[1];\ncswap a[0], a[1], b[0];\n",
	"qreg q[1];\nu(1.0, -2.0, 3e-1) q[0];\nsxdg q[0];\nid q[0];\n",
	"qreg q[2];\ncx q[0];\n",                                       // missing operand
	"qreg q[1];\nrx q[0];\n",                                       // missing parameter
	"qreg q[1];\nx(1.5) q[0];\n",                                   // parameter on a fixed gate
	"qreg q[2];\ncx q[0], q[0];\n",                                 // repeated operand
	"qreg q[2];\nswap q[1], q[1];\n",                               // repeated operand via swap
	"qreg q[1];\nrx(1e308*10) q[0];\n",                             // overflow to +Inf
	"qreg q[0];\n",                                                 // zero-size register
	"qreg a[9223372036854775807];\nqreg b[9223372036854775807];\n", // index overflow
	"OPENQASM 2.0;\nqreg q[1];\nh q[0]",                            // missing terminator
	"qreg q[1];\nmeasure q[0] -> c[0];\n",                          // measure into undeclared creg
	"\"unterminated",
	"gate foo a { x a; }\n",
}

// FuzzQASMParse asserts that Parse never panics on arbitrary input, and that
// any program it accepts survives an export/reparse round trip: the reparsed
// circuit must have the same width and the same canonical encoding.
func FuzzQASMParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src, "fuzz")
		if err != nil {
			return
		}
		out, err := Export(prog.Circuit)
		if err != nil {
			// Not all accepted circuits are expressible in plain QASM 2.0.
			return
		}
		again, err := Parse(out, "fuzz")
		if err != nil {
			t.Fatalf("exported program does not reparse: %v\n%s", err, out)
		}
		if again.Circuit.NumQubits != prog.Circuit.NumQubits {
			t.Fatalf("round trip changed width: %d -> %d", prog.Circuit.NumQubits, again.Circuit.NumQubits)
		}
		a := prog.Circuit.AppendCanonical(nil)
		b := again.Circuit.AppendCanonical(nil)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed the canonical encoding:\noriginal:\n%s\nexported:\n%s", src, out)
		}
	})
}
