package qasm

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/circuit"
	"repro/internal/dd"
)

// Program is a parsed QASM file mapped onto the circuit IR.
type Program struct {
	Circuit *circuit.Circuit
	// Registers maps qreg names to [offset, size].
	Registers map[string][2]int
	// Measurements lists (qubit, classical bit) pairs from measure
	// statements, in order. The simulator samples instead of performing
	// mid-circuit collapses; the list lets callers map samples to creg bits.
	Measurements [][2]int
}

type parser struct {
	toks []token
	pos  int

	qregs  map[string][2]int
	cregs  map[string][2]int
	qCount int
	cCount int

	ops []operation
}

type operation struct {
	name    string
	params  []float64
	qubits  []int
	measure [2]int
	isMeas  bool
	barrier bool
}

// Parse converts QASM source into a Program.
func Parse(src, name string) (*Program, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:  toks,
		qregs: map[string][2]int{},
		cregs: map[string][2]int{},
	}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if p.qCount == 0 {
		return nil, fmt.Errorf("qasm: no qreg declared")
	}
	c := circuit.New(p.qCount, name)
	prog := &Program{Circuit: c, Registers: p.qregs}
	for _, op := range p.ops {
		switch {
		case op.barrier:
			c.EndBlock()
		case op.isMeas:
			prog.Measurements = append(prog.Measurements, op.measure)
		default:
			if err := applyOp(c, op); err != nil {
				return nil, err
			}
		}
	}
	return prog, nil
}

// gateSpec fixes the operand and parameter arity of every supported gate, so
// malformed statements become parse errors instead of panics deeper in the
// circuit builder.
var gateSpec = map[string]struct{ qubits, params int }{
	"x": {1, 0}, "y": {1, 0}, "z": {1, 0}, "h": {1, 0}, "s": {1, 0},
	"sdg": {1, 0}, "t": {1, 0}, "tdg": {1, 0}, "sx": {1, 0}, "sxdg": {1, 0},
	"id": {1, 0}, "i": {1, 0},
	"rx": {1, 1}, "ry": {1, 1}, "rz": {1, 1}, "p": {1, 1}, "u1": {1, 1},
	"u2": {1, 2}, "u3": {1, 3}, "u": {1, 3},
	"cx": {2, 0}, "cy": {2, 0}, "cz": {2, 0}, "ch": {2, 0},
	"cp": {2, 1}, "cu1": {2, 1}, "crz": {2, 1},
	"ccx": {3, 0}, "ccz": {3, 0},
	"swap": {2, 0}, "cswap": {3, 0},
}

func applyOp(c *circuit.Circuit, op operation) error {
	spec, ok := gateSpec[op.name]
	if !ok {
		return fmt.Errorf("qasm: unsupported gate %q", op.name)
	}
	if len(op.qubits) != spec.qubits {
		return fmt.Errorf("qasm: gate %q takes %d qubit operand(s), got %d", op.name, spec.qubits, len(op.qubits))
	}
	if len(op.params) != spec.params {
		return fmt.Errorf("qasm: gate %q takes %d parameter(s), got %d", op.name, spec.params, len(op.params))
	}
	for _, v := range op.params {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("qasm: gate %q has non-finite parameter", op.name)
		}
	}
	for i := 0; i < len(op.qubits); i++ {
		for j := i + 1; j < len(op.qubits); j++ {
			if op.qubits[i] == op.qubits[j] {
				return fmt.Errorf("qasm: gate %q repeats qubit operand q%d", op.name, op.qubits[i])
			}
		}
	}
	q := op.qubits
	pc := func(idx int) dd.Control { return dd.PosControl(q[idx]) }
	switch op.name {
	case "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg", "id", "i":
		c.Apply(op.name, nil, q[0])
	case "rx", "ry", "rz", "p", "u1":
		c.Apply(op.name, op.params, q[0])
	case "u2", "u3":
		c.Apply(op.name, op.params, q[0])
	case "u":
		// Normalized to u3 so export/reparse round trips to the same
		// canonical encoding.
		c.Apply("u3", op.params, q[0])
	case "cx":
		c.Apply("x", nil, q[1], pc(0))
	case "cy":
		c.Apply("y", nil, q[1], pc(0))
	case "cz":
		c.Apply("z", nil, q[1], pc(0))
	case "ch":
		c.Apply("h", nil, q[1], pc(0))
	case "cp", "cu1":
		c.Apply("p", op.params, q[1], pc(0))
	case "crz":
		c.Apply("rz", op.params, q[1], pc(0))
	case "ccx":
		c.Apply("x", nil, q[2], pc(0), pc(1))
	case "ccz":
		c.Apply("z", nil, q[2], pc(0), pc(1))
	case "swap":
		c.SWAP(q[0], q[1])
	case "cswap":
		// Fredkin via three Toffolis.
		c.Apply("x", nil, q[2], pc(0), dd.PosControl(q[1]))
		c.Apply("x", nil, q[1], pc(0), dd.PosControl(q[2]))
		c.Apply("x", nil, q[2], pc(0), dd.PosControl(q[1]))
	default:
		return fmt.Errorf("qasm: unsupported gate %q", op.name)
	}
	return nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) advance()    { p.pos++ }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("qasm: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	t := p.cur()
	if (t.kind != tokSymbol && t.kind != tokArrow) || t.text != s {
		return p.errf("expected %q, got %q", s, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) parse() error {
	for !p.atEOF() {
		t := p.cur()
		if t.kind != tokIdent {
			return p.errf("expected statement, got %q", t.text)
		}
		switch t.text {
		case "OPENQASM":
			p.advance()
			if p.cur().kind != tokNumber {
				return p.errf("expected version number")
			}
			p.advance()
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
		case "include":
			p.advance()
			if p.cur().kind != tokString {
				return p.errf("expected include path string")
			}
			p.advance()
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
		case "qreg", "creg":
			if err := p.parseReg(t.text); err != nil {
				return err
			}
		case "barrier":
			p.advance()
			// Skip operand list; barriers map to block boundaries.
			for !p.atEOF() && !(p.cur().kind == tokSymbol && p.cur().text == ";") {
				p.advance()
			}
			if err := p.expectSymbol(";"); err != nil {
				return err
			}
			p.ops = append(p.ops, operation{barrier: true})
		case "measure":
			if err := p.parseMeasure(); err != nil {
				return err
			}
		case "gate", "opaque", "if", "reset":
			return p.errf("unsupported statement %q (custom gates, conditionals and reset are outside the supported subset)", t.text)
		default:
			if err := p.parseGate(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *parser) parseReg(kind string) error {
	p.advance()
	if p.cur().kind != tokIdent {
		return p.errf("expected register name")
	}
	name := p.cur().text
	p.advance()
	if err := p.expectSymbol("["); err != nil {
		return err
	}
	if p.cur().kind != tokNumber {
		return p.errf("expected register size")
	}
	size, err := strconv.Atoi(p.cur().text)
	if err != nil || size <= 0 {
		return p.errf("invalid register size %q", p.cur().text)
	}
	p.advance()
	if err := p.expectSymbol("]"); err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	if kind == "qreg" {
		if _, dup := p.qregs[name]; dup {
			return p.errf("duplicate qreg %q", name)
		}
		if size > maxRegisterBits-p.qCount {
			return p.errf("qreg %q pushes the total qubit count past %d", name, maxRegisterBits)
		}
		p.qregs[name] = [2]int{p.qCount, size}
		p.qCount += size
	} else {
		if _, dup := p.cregs[name]; dup {
			return p.errf("duplicate creg %q", name)
		}
		if size > maxRegisterBits-p.cCount {
			return p.errf("creg %q pushes the total bit count past %d", name, maxRegisterBits)
		}
		p.cregs[name] = [2]int{p.cCount, size}
		p.cCount += size
	}
	return nil
}

// maxRegisterBits bounds the total declared qubits/bits; it is far beyond
// anything simulable and exists to keep adversarial register sizes from
// overflowing the flat index space.
const maxRegisterBits = 1 << 20

func (p *parser) parseMeasure() error {
	p.advance()
	q, err := p.parseQubitRef(p.qregs)
	if err != nil {
		return err
	}
	if err := p.expectSymbol("->"); err != nil {
		return err
	}
	cbit, err := p.parseQubitRef(p.cregs)
	if err != nil {
		return err
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	p.ops = append(p.ops, operation{isMeas: true, measure: [2]int{q, cbit}})
	return nil
}

// parseQubitRef parses name[idx] against the given register table and
// returns the flat index.
func (p *parser) parseQubitRef(regs map[string][2]int) (int, error) {
	if p.cur().kind != tokIdent {
		return 0, p.errf("expected register reference")
	}
	name := p.cur().text
	reg, ok := regs[name]
	if !ok {
		return 0, p.errf("unknown register %q", name)
	}
	p.advance()
	if err := p.expectSymbol("["); err != nil {
		return 0, err
	}
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected index")
	}
	idx, err := strconv.Atoi(p.cur().text)
	if err != nil || idx < 0 || idx >= reg[1] {
		return 0, p.errf("index %q out of range for %q", p.cur().text, name)
	}
	p.advance()
	if err := p.expectSymbol("]"); err != nil {
		return 0, err
	}
	return reg[0] + idx, nil
}

func (p *parser) parseGate() error {
	name := p.cur().text
	p.advance()
	var params []float64
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		p.advance()
		for {
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			params = append(params, v)
			if p.cur().kind == tokSymbol && p.cur().text == "," {
				p.advance()
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return err
		}
	}
	var qubits []int
	for {
		q, err := p.parseQubitRef(p.qregs)
		if err != nil {
			return err
		}
		qubits = append(qubits, q)
		if p.cur().kind == tokSymbol && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol(";"); err != nil {
		return err
	}
	p.ops = append(p.ops, operation{name: name, params: params, qubits: qubits})
	return nil
}

// Expression grammar: expr := term (('+'|'-') term)*; term := factor
// (('*'|'/') factor)*; factor := number | pi | '-' factor | '(' expr ')'.
func (p *parser) parseExpr() (float64, error) {
	v, err := p.parseTerm()
	if err != nil {
		return 0, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.advance()
		rhs, err := p.parseTerm()
		if err != nil {
			return 0, err
		}
		if op == "+" {
			v += rhs
		} else {
			v -= rhs
		}
	}
	return v, nil
}

func (p *parser) parseTerm() (float64, error) {
	v, err := p.parseFactor()
	if err != nil {
		return 0, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.cur().text
		p.advance()
		rhs, err := p.parseFactor()
		if err != nil {
			return 0, err
		}
		if op == "*" {
			v *= rhs
		} else {
			if rhs == 0 {
				return 0, p.errf("division by zero in parameter expression")
			}
			v /= rhs
		}
	}
	return v, nil
}

func (p *parser) parseFactor() (float64, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, p.errf("bad number %q", t.text)
		}
		p.advance()
		return v, nil
	case t.kind == tokIdent && t.text == "pi":
		p.advance()
		return math.Pi, nil
	case t.kind == tokSymbol && t.text == "-":
		p.advance()
		v, err := p.parseFactor()
		return -v, err
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		return v, p.expectSymbol(")")
	default:
		return 0, p.errf("unexpected token %q in expression", t.text)
	}
}
