package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single-character punctuation: ; , ( ) [ ] { } + - * / ->(arrow handled as two)
	tokArrow  // ->
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("qasm: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		ch := l.src[l.pos]
		switch {
		case ch == '\n':
			l.line++
			l.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			l.pos++
		case ch == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	ch := l.src[l.pos]
	start := l.pos
	switch {
	case isIdentStart(rune(ch)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
	case ch >= '0' && ch <= '9' || ch == '.':
		seenDot := false
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == '.' {
				if seenDot {
					break
				}
				seenDot = true
				l.pos++
			} else if c >= '0' && c <= '9' {
				l.pos++
			} else if c == 'e' || c == 'E' {
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
			} else {
				break
			}
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
	case ch == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return token{kind: tokString, text: text, line: l.line}, nil
	case ch == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		return token{kind: tokArrow, text: "->", line: l.line}, nil
	case strings.ContainsRune(";,()[]{}+-*/=<>", rune(ch)):
		l.pos++
		return token{kind: tokSymbol, text: string(ch), line: l.line}, nil
	default:
		return token{}, l.errf("unexpected character %q", ch)
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// tokenize scans the whole source.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
