package qasm

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
)

// Export renders a circuit as OpenQASM 2.0 source. Gates with more controls
// than QASM's standard library supports are emitted via ccx/ccz where
// possible; permutation gates and >2 controls (beyond ccx/ccz) are not
// expressible in the plain 2.0 gate set and produce an error. Block
// boundaries are emitted as barriers.
func Export(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	fmt.Fprintf(&b, "creg c[%d];\n", c.NumQubits)

	blocks := map[int]bool{}
	for _, idx := range c.Blocks() {
		blocks[idx] = true
	}

	for i, g := range c.Gates() {
		line, err := exportGate(g)
		if err != nil {
			return "", fmt.Errorf("qasm: gate %d: %w", i, err)
		}
		b.WriteString(line)
		b.WriteString("\n")
		if blocks[i] {
			b.WriteString("barrier q;\n")
		}
	}
	return b.String(), nil
}

func exportGate(g circuit.Gate) (string, error) {
	if g.Kind == circuit.KindPerm {
		return "", fmt.Errorf("permutation gates are not expressible in OpenQASM 2.0")
	}
	for _, ctl := range g.Controls {
		if !ctl.Positive {
			return "", fmt.Errorf("negative controls are not expressible in OpenQASM 2.0")
		}
	}
	params := ""
	if len(g.Params) > 0 {
		parts := make([]string, len(g.Params))
		for i, p := range g.Params {
			parts[i] = fmt.Sprintf("%.17g", p)
		}
		params = "(" + strings.Join(parts, ",") + ")"
	}
	q := func(i int) string { return fmt.Sprintf("q[%d]", i) }

	switch len(g.Controls) {
	case 0:
		name := g.Name
		if name == "u" {
			name = "u3"
		}
		return fmt.Sprintf("%s%s %s;", name, params, q(g.Target)), nil
	case 1:
		ctl := g.Controls[0].Qubit
		switch g.Name {
		case "x":
			return fmt.Sprintf("cx %s, %s;", q(ctl), q(g.Target)), nil
		case "y":
			return fmt.Sprintf("cy %s, %s;", q(ctl), q(g.Target)), nil
		case "z":
			return fmt.Sprintf("cz %s, %s;", q(ctl), q(g.Target)), nil
		case "h":
			return fmt.Sprintf("ch %s, %s;", q(ctl), q(g.Target)), nil
		case "p", "u1", "phase":
			return fmt.Sprintf("cp%s %s, %s;", params, q(ctl), q(g.Target)), nil
		case "rz":
			return fmt.Sprintf("crz%s %s, %s;", params, q(ctl), q(g.Target)), nil
		default:
			return "", fmt.Errorf("no standard controlled form for gate %q", g.Name)
		}
	case 2:
		c1, c2 := g.Controls[0].Qubit, g.Controls[1].Qubit
		switch g.Name {
		case "x":
			return fmt.Sprintf("ccx %s, %s, %s;", q(c1), q(c2), q(g.Target)), nil
		case "z":
			return fmt.Sprintf("ccz %s, %s, %s;", q(c1), q(c2), q(g.Target)), nil
		default:
			return "", fmt.Errorf("no standard doubly-controlled form for gate %q", g.Name)
		}
	default:
		return "", fmt.Errorf("gate %q has %d controls; OpenQASM 2.0 standard gates stop at 2", g.Name, len(g.Controls))
	}
}
