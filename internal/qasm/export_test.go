package qasm

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/sim"
)

func TestExportRoundTrip(t *testing.T) {
	circuits := []*circuit.Circuit{
		gen.QFT(4),
		gen.GHZ(5),
		gen.BernsteinVazirani(4, 0b1010),
		gen.RandomCliffordT(4, 40, 9),
	}
	for _, orig := range circuits {
		src, err := Export(orig)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		prog, err := Parse(src, orig.Name+"_rt")
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", orig.Name, err, src)
		}
		// Semantically identical: same final state from |0...0⟩.
		s1 := sim.New()
		r1, err := s1.Run(orig, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s2 := sim.New()
		r2, err := s2.Run(prog.Circuit, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		v1 := s1.M.ToVector(r1.Final, orig.NumQubits)
		v2 := s2.M.ToVector(r2.Final, orig.NumQubits)
		for i := range v1 {
			if cmplxAbs(v1[i]-v2[i]) > 1e-9 {
				t.Fatalf("%s: round trip diverged at amplitude %d: %v vs %v",
					orig.Name, i, v1[i], v2[i])
			}
		}
	}
}

func TestExportBarriers(t *testing.T) {
	c := circuit.New(2, "blocks")
	c.H(0)
	c.EndBlock()
	c.X(1)
	src, err := Export(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "barrier q;") {
		t.Errorf("block boundary not exported as barrier:\n%s", src)
	}
	prog, err := Parse(src, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Circuit.Blocks()) != 1 {
		t.Errorf("barrier did not round-trip to a block boundary")
	}
}

func TestExportParameterPrecision(t *testing.T) {
	c := circuit.New(1, "prec")
	c.RZ(0.12345678901234567, 0)
	src, err := Export(c)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(src, "rt")
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Circuit.Gates()[0].Params[0]
	if got != 0.12345678901234567 {
		t.Errorf("parameter precision lost: %v", got)
	}
}

func TestExportUnsupported(t *testing.T) {
	c := circuit.New(4, "perm")
	c.Permutation([]int{1, 0}, 1)
	if _, err := Export(c); err == nil {
		t.Error("permutation gate exported to QASM 2.0")
	}
	c2 := circuit.New(4, "neg")
	c2.Apply("x", nil, 0, dd.NegControl(1))
	if _, err := Export(c2); err == nil {
		t.Error("negative control exported to QASM 2.0")
	}
	c3 := circuit.New(4, "mcx3")
	c3.MCX([]int{1, 2, 3}, 0)
	if _, err := Export(c3); err == nil {
		t.Error("3-controlled X exported to QASM 2.0")
	}
	c4 := circuit.New(3, "ct")
	c4.Apply("t", nil, 0, dd.PosControl(1))
	if _, err := Export(c4); err == nil {
		t.Error("controlled-T exported without a standard form")
	}
}
