package repro

import (
	"context"
	"encoding/json"
	"math/rand"
	"time"

	"repro/internal/batch"
	"repro/internal/benchtab"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/density"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/order"
	"repro/internal/qasm"
	"repro/internal/serve"
	"repro/internal/shor"
	"repro/internal/sim"
	"repro/internal/supremacy"
	"repro/internal/verify"
	"repro/internal/xeb"
)

// Core simulation types.
type (
	// Circuit is the gate-list IR accepted by the simulator.
	Circuit = circuit.Circuit
	// Gate is one circuit operation.
	Gate = circuit.Gate
	// Control is a (possibly negative) gate control.
	Control = dd.Control
	// Manager owns decision diagrams; exposed for state inspection.
	Manager = dd.Manager
	// VEdge is a state decision diagram (weighted root edge).
	VEdge = dd.VEdge
	// MEdge is an operation decision diagram.
	MEdge = dd.MEdge
	// Simulator runs circuits on a DD manager.
	Simulator = sim.Simulator
	// Options configures a simulation run; build one with NewOptions and
	// the With… functional options, or fill the struct directly.
	Options = sim.Options
	// SimOption is one functional simulation option (WithStrategy,
	// WithObserver, WithDeadline, …).
	SimOption = sim.Option
	// Session is a resumable gate-level simulation: Step/StepN/Seek
	// through the circuit, inspect State between gates, Abort early, or
	// Finish for the Result. Run is a loop over a Session.
	Session = sim.Session
	// Result reports a finished run.
	Result = sim.Result
	// Comparison relates approximate and exact runs.
	Comparison = sim.Comparison
)

// Approximation types (the paper's contribution).
type (
	// Strategy decides when to approximate during simulation.
	Strategy = core.Strategy
	// MemoryDriven is the reactive strategy of Section IV-B.
	MemoryDriven = core.MemoryDriven
	// FidelityDriven is the proactive strategy of Section IV-C.
	FidelityDriven = core.FidelityDriven
	// ReplaceDriven is the node-replacement strategy (arXiv 2507.04335):
	// low-contribution nodes are swapped for cheaper substitutes —
	// SubstituteKind values "collapse" and "promote" — instead of zeroed,
	// holding fidelity higher at the same node budget.
	ReplaceDriven = core.ReplaceDriven
	// SubstituteKind names one replacement shape of ReplaceDriven.
	SubstituteKind = core.SubstituteKind
	// Exact disables approximation.
	Exact = core.Exact
	// Report describes one approximation round.
	Report = core.Report
	// Round is a report bound to its circuit position.
	Round = core.Round
	// StrategyFactory builds a fresh Strategy from JSON parameters; pair
	// with RegisterStrategy to make custom strategies addressable by name,
	// in-process and over the simulation service's HTTP API.
	StrategyFactory = core.StrategyFactory
)

// Observation types: simulation lifecycle events delivered mid-run.
type (
	// Observer receives per-gate, approximation, cleanup, and finish
	// events as a simulation executes (WithObserver / Options.Observer).
	Observer = core.Observer
	// NopObserver ignores every event; embed it for partial observers.
	NopObserver = core.NopObserver
	// GateEvent reports one applied gate and the DD size after it.
	GateEvent = core.GateEvent
	// CleanupEvent reports a node-pool mark-sweep collection.
	CleanupEvent = core.CleanupEvent
	// ReorderEvent reports a dynamic variable-reordering (sifting) pass.
	ReorderEvent = core.ReorderEvent
	// ChannelEvent reports a noise-channel application: exact superoperator
	// applications on the density backend (Branch −1), sampled quantum
	// jumps on a trajectory (Branch ≥ 1).
	ChannelEvent = core.ChannelEvent
	// FinishEvent summarizes a finished, failed, or aborted session.
	FinishEvent = core.FinishEvent
)

// Noisy simulation: the density-matrix backend and quantum-trajectory
// sampling (internal/density, internal/sim).
type (
	// Backend selects a run's state representation: BackendStatevector
	// (default) or BackendDensity (exact noisy simulation on ρ).
	Backend = sim.Backend
	// NoiseModel describes a noise channel applied after every gate to
	// each touched qubit (kind, strength, trajectory seed).
	NoiseModel = sim.NoiseModel
	// DensityState is a density matrix on matrix decision diagrams, with
	// purity, fidelity, probability, and sampling extraction.
	DensityState = density.State
	// NoiseChannel is a single-qubit Kraus channel; build one with
	// NewNoiseChannel or density.FromKraus.
	NoiseChannel = density.Channel
	// NoiseKind names a built-in channel (density.Depolarizing, ...).
	NoiseKind = density.Kind
)

// Simulation backends.
const (
	BackendStatevector = sim.BackendStatevector
	BackendDensity     = sim.BackendDensity
)

// NewNoiseChannel builds a built-in single-qubit channel (depolarizing,
// amplitude_damping, dephasing, bit_flip, phase_flip) of strength p,
// validating Kraus completeness.
func NewNoiseChannel(kind NoiseKind, p float64) (NoiseChannel, error) {
	return density.New(kind, p)
}

// NoiseKinds lists the built-in channel kinds.
func NoiseKinds() []NoiseKind { return density.Kinds() }

// Variable ordering (the reordering layer of internal/order and
// internal/dd): the qubit→level order is as decisive for DD size as the
// paper's truncations, and the two compound.
type (
	// ReorderPolicy is a strategy's variable-ordering request: a static
	// ordering name plus optional dynamic sifting bounds.
	ReorderPolicy = core.ReorderPolicy
	// ReorderStrategy wraps an inner approximation strategy with a
	// reordering policy; build one with NewReorder or by registry name
	// ("reorder") with order.Params-shaped JSON.
	ReorderStrategy = order.Strategy
)

// NewReorder wraps inner (nil = exact) with a variable-reordering policy,
// e.g. repro.NewReorder(repro.ReorderPolicy{Static: "scored", Sift: true}, nil).
func NewReorder(policy ReorderPolicy, inner Strategy) *ReorderStrategy {
	return order.NewReorder(policy, inner)
}

// OrderingNames lists the supported static ordering names ("identity",
// "reversed", "scored").
func OrderingNames() []string { return order.Names() }

// Workload types.
type (
	// SupremacyConfig describes a quantum-supremacy benchmark circuit.
	SupremacyConfig = supremacy.Config
	// ShorInstance is one shor_N_a benchmark.
	ShorInstance = shor.Instance
	// ShorRunOptions configures an end-to-end Shor run.
	ShorRunOptions = shor.RunOptions
	// ShorOutcome bundles simulation and factoring results.
	ShorOutcome = shor.Outcome
	// Table1Suite regenerates Table I.
	Table1Suite = benchtab.Suite
	// Table1Row is one Table I line.
	Table1Row = benchtab.Row
	// Table1RunOptions configures suite execution (worker count, seeds,
	// progress); accepted by Table1Suite.RunMemoryDrivenBatch and
	// RunFidelityDrivenBatch.
	Table1RunOptions = benchtab.RunOptions
	// SweepOptions configures the hyper-parameter sweep drivers.
	SweepOptions = benchtab.SweepOptions
	// QASMProgram is a parsed OpenQASM 2.0 program.
	QASMProgram = qasm.Program
)

// Batch simulation (the worker-pool engine of internal/batch).
type (
	// BatchJob is one independent simulation in a batch.
	BatchJob = batch.Job
	// BatchJobResult is the outcome of one batch job.
	BatchJobResult = batch.JobResult
	// BatchOptions is the underlying representation of a batch
	// configuration; build one with NewBatchOptions and the batch With…
	// options, or fill the struct directly.
	BatchOptions = batch.Options
	// BatchOption is one functional batch option (WithWorkers,
	// WithReuseManagers, WithArena, …), accepted by BatchRun.
	BatchOption = batch.Option
	// BatchResult aggregates a finished batch.
	BatchResult = batch.Result
	// BatchArenaConfig sizes the per-worker memory arenas used when
	// managers are reused (WithArena).
	BatchArenaConfig = batch.ArenaConfig
	// BatchObserver receives batch-lifecycle events (per-job start/done,
	// per-worker summaries) on the worker goroutines.
	BatchObserver = batch.Observer
	// BatchWorkerStats aggregates one worker's jobs, busy time, and arena
	// occupancy (BatchResult.PerWorker, pool state snapshots).
	BatchWorkerStats = batch.WorkerStats
)

// Typed batch submission/cancellation errors, re-exported so callers can
// errors.Is against pool outcomes without importing internal packages. The
// client package re-exports the same sentinels for HTTP callers.
var (
	// ErrBatchQueueFull: the service/pool queue was full (load shedding).
	ErrBatchQueueFull = batch.ErrQueueFull
	// ErrBatchShutdown: the pool stopped accepting jobs.
	ErrBatchShutdown = batch.ErrShutdown
	// ErrBatchCanceled: the job was canceled without a custom cause.
	ErrBatchCanceled = batch.ErrCanceled
)

// Simulation service (the asynchronous HTTP/JSON frontend of internal/serve,
// served standalone by cmd/simd).
type (
	// Server is the embeddable simulation service: an HTTP handler backed
	// by a batch worker pool and a content-addressed result cache.
	Server = serve.Server
	// ServeConfig sizes a Server (workers, queue depth, cache entries,
	// default timeout, request limits).
	ServeConfig = serve.Config
	// ServeJobRequest is the POST /v1/jobs submission body.
	ServeJobRequest = serve.JobRequest
	// ServeJobStatus is the per-job API envelope.
	ServeJobStatus = serve.JobStatus
	// ServeResult is the JSON payload of a finished job.
	ServeResult = serve.ResultPayload
	// ServeStats is the GET /v1/stats body (cache, pool, DD counters).
	ServeStats = serve.Stats
	// ServeEvent is one entry of a job's SSE stream
	// (GET /v1/jobs/{id}/events), sourced from the simulation Observer.
	// The typed consumer lives in the public client package.
	ServeEvent = serve.Event
	// ServePool is the worker-pool occupancy snapshot inside ServeStats.
	ServePool = batch.PoolState
)

// NewServer returns a running simulation service; mount it with
// Server.Handler (it also implements http.Handler directly) and stop it
// with Server.Shutdown.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// Serve listens on addr and serves the simulation API until ctx is
// canceled, then shuts down gracefully, giving in-flight jobs the grace
// period before canceling them (0 waits indefinitely).
func Serve(ctx context.Context, addr string, cfg ServeConfig, grace time.Duration) error {
	return serve.Serve(ctx, addr, cfg, grace)
}

// BatchRun fans independent simulation jobs out across a worker pool, one
// DD manager per worker, configured by functional options:
//
//	res, err := repro.BatchRun(ctx, jobs,
//		repro.WithWorkers(4),
//		repro.WithArena(repro.BatchArenaConfig{PrewarmNodes: 1 << 16}))
//
// Seeding is deterministic per job (derived from the base seed and the job
// index), cancellation is context-based, and per-job deadlines are
// supported. Results are ordered by job index and are bit-identical for any
// worker count and manager-reuse mode (timing fields aside).
func BatchRun(ctx context.Context, jobs []BatchJob, opts ...BatchOption) (*BatchResult, error) {
	return batch.Run(ctx, jobs, batch.NewOptions(opts...))
}

// BatchRunOptions is BatchRun taking the underlying options struct.
//
// Deprecated: use BatchRun with functional options, or NewBatchOptions to
// build the struct.
func BatchRunOptions(ctx context.Context, jobs []BatchJob, opts BatchOptions) (*BatchResult, error) {
	return batch.Run(ctx, jobs, opts)
}

// NewBatchOptions folds functional batch options into a BatchOptions value,
// for APIs that take the struct.
func NewBatchOptions(opts ...BatchOption) BatchOptions { return batch.NewOptions(opts...) }

// Functional batch options, re-exported from internal/batch.

// WithWorkers sets the batch worker-pool size (≤ 0 selects GOMAXPROCS).
func WithWorkers(n int) BatchOption { return batch.WithWorkers(n) }

// WithBaseSeed sets the base seed per-job measurement seeds derive from.
func WithBaseSeed(seed int64) BatchOption { return batch.WithBaseSeed(seed) }

// WithJobTimeout bounds every job's simulation (BatchJob.Timeout overrides
// it per job).
func WithJobTimeout(d time.Duration) BatchOption { return batch.WithJobTimeout(d) }

// WithReuseManagers keeps one DD manager per worker, reset between jobs:
// warm memory, bit-identical results.
func WithReuseManagers() BatchOption { return batch.WithReuseManagers() }

// WithArena enables manager reuse with explicit arena sizing (pre-warmed
// node pools, bounded retention across batches).
func WithArena(cfg BatchArenaConfig) BatchOption { return batch.WithArena(cfg) }

// WithBatchObserver wires a batch-lifecycle observer into the run.
func WithBatchObserver(obs BatchObserver) BatchOption { return batch.WithObserver(obs) }

// WithBatchProgress registers a serialized progress callback invoked after
// each job finishes.
func WithBatchProgress(fn func(done, total int, r BatchJobResult)) BatchOption {
	return batch.WithProgress(fn)
}

// BatchSeed returns the measurement seed the batch engine derives for the
// job at the given index from a base seed.
func BatchSeed(base int64, index int) int64 { return batch.Seed(base, index) }

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int, name string) *Circuit { return circuit.New(n, name) }

// NewSimulator returns a simulator with a fresh DD manager.
func NewSimulator() *Simulator { return sim.New() }

// Run simulates the circuit on a fresh simulator under functional options:
//
//	res, err := repro.Run(c, repro.WithStrategy(repro.NewFidelityDriven(0.8, 0.95)),
//		repro.WithSeed(7))
//
// For repeated runs sharing one DD manager, use NewSimulator and
// Simulator.Run with NewOptions.
func Run(c *Circuit, opts ...SimOption) (*Result, error) {
	return sim.New().Run(c, sim.NewOptions(opts...))
}

// NewSession starts a resumable gate-level simulation on a fresh simulator:
// step, observe, and steer it mid-run, then Finish for the Result. Sessions
// on a shared manager come from Simulator.NewSession.
func NewSession(c *Circuit, opts ...SimOption) (*Session, error) {
	return sim.NewSession(c, sim.NewOptions(opts...))
}

// NewOptions folds functional options into an Options value, for APIs that
// take the struct (Simulator.Run, RunAndCompare, BatchJob.Options).
func NewOptions(opts ...SimOption) Options { return sim.NewOptions(opts...) }

// Functional simulation options, re-exported from internal/sim.

// WithStrategy selects the approximation strategy (a fresh, unshared
// instance — strategies are stateful per run).
func WithStrategy(s Strategy) SimOption { return sim.WithStrategy(s) }

// WithObserver wires a lifecycle-event observer into the run.
func WithObserver(o Observer) SimOption { return sim.WithObserver(o) }

// WithDeadline aborts the run once the deadline passes (checked between
// gates); the error wraps sim.ErrDeadlineExceeded.
func WithDeadline(t time.Time) SimOption { return sim.WithDeadline(t) }

// WithTimeout is WithDeadline relative to now.
func WithTimeout(d time.Duration) SimOption { return sim.WithTimeout(d) }

// WithContext cancels the run between gates once ctx is done.
func WithContext(ctx context.Context) SimOption { return sim.WithContext(ctx) }

// WithSeed seeds mid-circuit measurement and reset outcomes.
func WithSeed(seed int64) SimOption { return sim.WithSeed(seed) }

// WithInitialState starts from the basis state |b⟩ instead of |0…0⟩.
func WithInitialState(b uint64) SimOption { return sim.WithInitialState(b) }

// WithSizeHistory records the DD size after every gate in
// Result.SizeHistory.
func WithSizeHistory() SimOption { return sim.WithSizeHistory() }

// WithKeepAlive protects states from earlier runs on the same manager
// across this run's node-pool sweeps.
func WithKeepAlive(edges ...VEdge) SimOption { return sim.WithKeepAlive(edges...) }

// WithBackend selects the state representation (BackendDensity for exact
// noisy simulation; the default is BackendStatevector).
func WithBackend(b Backend) SimOption { return sim.WithBackend(b) }

// WithNoise applies the noise channel after every gate: exactly on the
// density backend, as one sampled quantum trajectory on the statevector
// backend.
func WithNoise(n NoiseModel) SimOption { return sim.WithNoise(n) }

// RegisterStrategy makes a custom approximation strategy constructible by
// name — usable in-process (NewStrategyByName, WithStrategy) and over the
// simulation service's HTTP API (JobRequest.Strategy/StrategyParams). See
// core.RegisterStrategy for the registry contract.
func RegisterStrategy(name string, factory StrategyFactory) error {
	return core.RegisterStrategy(name, factory)
}

// NewStrategyByName builds a fresh strategy instance from the registry
// ("exact", "memory", "fidelity", or any registered name).
func NewStrategyByName(name string, params json.RawMessage) (Strategy, error) {
	return core.NewStrategyByName(name, params)
}

// StrategyNames lists every registered strategy name, sorted.
func StrategyNames() []string { return core.StrategyNames() }

// RunAndCompare simulates a circuit exactly and approximately and measures
// the true fidelity between the final states.
func RunAndCompare(c *Circuit, opts Options) (*Comparison, error) {
	return sim.RunAndCompare(c, opts)
}

// NewFidelityDriven returns the fidelity-driven strategy with the paper's
// defaults (late block placement).
func NewFidelityDriven(finalFidelity, roundFidelity float64) *FidelityDriven {
	return core.NewFidelityDriven(finalFidelity, roundFidelity)
}

// ApproximateToFidelity applies one approximation round to a state DD,
// removing the smallest-contribution nodes within the 1−fround budget
// (Section IV-A).
func ApproximateToFidelity(m *Manager, e VEdge, fround float64) (VEdge, Report, error) {
	return core.ApproximateToFidelity(m, e, fround)
}

// NodeContributions computes Definition 2's per-node contributions.
func NodeContributions(m *Manager, e VEdge) map[*dd.VNode]float64 {
	return core.Contributions(m, e)
}

// NewShorInstance validates a shor_N_a benchmark instance.
func NewShorInstance(n, a uint64) (*ShorInstance, error) { return shor.NewInstance(n, a) }

// ShorFactor factors n end-to-end with simulated order finding.
func ShorFactor(n uint64, opts ShorRunOptions) (*ShorOutcome, error) {
	return shor.Factor(n, opts)
}

// ParseQASM parses an OpenQASM 2.0 source into a circuit.
func ParseQASM(src, name string) (*QASMProgram, error) { return qasm.Parse(src, name) }

// Table1 returns the benchmark suite for a preset ("small", "medium",
// "paper").
func Table1(preset string) (Table1Suite, error) { return benchtab.NewSuite(preset) }

// FormatTable renders Table I rows as markdown.
func FormatTable(rows []Table1Row) string { return benchtab.FormatMarkdown(rows) }

// FormatTableCSV renders Table I rows as CSV.
func FormatTableCSV(rows []Table1Row) string { return benchtab.FormatCSV(rows) }

// Circuit generators re-exported from internal/gen.

// QFTCircuit returns an n-qubit quantum Fourier transform.
func QFTCircuit(n int) *Circuit { return gen.QFT(n) }

// InverseQFTCircuit returns an n-qubit inverse QFT.
func InverseQFTCircuit(n int) *Circuit { return gen.InverseQFT(n) }

// GHZCircuit prepares the n-qubit GHZ state.
func GHZCircuit(n int) *Circuit { return gen.GHZ(n) }

// WStateCircuit prepares the n-qubit W state.
func WStateCircuit(n int) *Circuit { return gen.WState(n) }

// GroverCircuit searches for `marked` on n qubits.
func GroverCircuit(n int, marked uint64, iterations int) *Circuit {
	return gen.Grover(n, marked, iterations)
}

// BernsteinVaziraniCircuit recovers an n-bit secret in one query.
func BernsteinVaziraniCircuit(n int, secret uint64) *Circuit {
	return gen.BernsteinVazirani(n, secret)
}

// RandomCliffordTCircuit returns a seeded random {H,S,T,CX} circuit.
func RandomCliffordTCircuit(n, gates int, seed int64) *Circuit {
	return gen.RandomCliffordT(n, gates, seed)
}

// CountNodes returns the node count of a state DD (the paper's size metric).
func CountNodes(e VEdge) int { return dd.CountVNodes(e) }

// RenderDD returns a human-readable description of a state DD.
func RenderDD(e VEdge) string { return dd.Render(e) }

// DOTDD renders a state DD in Graphviz format (Fig. 1b style).
func DOTDD(e VEdge, name string) string { return dd.DOT(e, name) }

// ExportQASM renders a circuit as OpenQASM 2.0 source.
func ExportQASM(c *Circuit) (string, error) { return qasm.Export(c) }

// EquivalenceResult reports a circuit equivalence check.
type EquivalenceResult = verify.Result

// CircuitsEquivalent checks unitary equivalence up to global phase via
// decision diagrams (V†·U ≟ λ·I).
func CircuitsEquivalent(u, v *Circuit) (*EquivalenceResult, error) {
	return verify.Equivalent(u, v)
}

// XEBScore draws shots samples from test and computes their linear
// cross-entropy fidelity against ideal (both states in manager m).
func XEBScore(m *Manager, ideal, test VEdge, n, shots int, rng *rand.Rand) (float64, error) {
	return xeb.Score(m, ideal, test, n, shots, rng)
}

// ApproximateToSize shrinks a state DD to at most maxNodes nodes, reporting
// (but not bounding) the fidelity cost.
func ApproximateToSize(m *Manager, e VEdge, maxNodes int) (VEdge, Report, error) {
	return core.ApproximateToSize(m, e, maxNodes)
}

// OptimizeStats reports what OptimizeCircuit did.
type OptimizeStats = opt.Stats

// OptimizeCircuit returns an equivalent circuit with adjacent inverse pairs
// cancelled, rotations merged, and identity gates dropped.
func OptimizeCircuit(c *Circuit) (*Circuit, OptimizeStats) { return opt.Optimize(c) }
