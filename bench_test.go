package repro

// Benchmark harness regenerating the paper's evaluation (Table I) and the
// supporting ablations. Every benchmark corresponds to an experiment in
// DESIGN.md's experiment index; EXPERIMENTS.md records paper-vs-measured.
//
// The default (small) preset keeps `go test -bench=.` in the minutes range;
// run `go run ./cmd/table1 -scale medium|paper` for larger instances.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/benchtab"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/shor"
	"repro/internal/sim"
	"repro/internal/supremacy"
)

// --- E1: Table I, memory-driven half (quantum-supremacy circuits) ---------

func BenchmarkTable1MemoryDriven(b *testing.B) {
	cfg := supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 0}
	circ, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact_"+cfg.Name(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sim.New()
			res, err := s.Run(circ, sim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.MaxDDSize), "maxDDnodes")
		}
	})
	for _, fround := range []float64{0.99, 0.975, 0.95} {
		b.Run(fmt.Sprintf("approx_%s_fround%g", cfg.Name(), fround), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sim.New()
				res, err := s.Run(circ, sim.Options{Strategy: &core.MemoryDriven{
					Threshold: 1 << 10, RoundFidelity: fround, Growth: 1.05,
				}})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.MaxDDSize), "maxDDnodes")
				b.ReportMetric(float64(len(res.Rounds)), "rounds")
				b.ReportMetric(res.EstimatedFidelity, "fidelity")
			}
		})
	}
}

// --- E2: Table I, fidelity-driven half (Shor's algorithm) -----------------

func BenchmarkTable1FidelityDriven(b *testing.B) {
	cases := []struct{ n, a uint64 }{{15, 7}, {21, 2}, {33, 5}}
	for _, c := range cases {
		inst, err := shor.NewInstance(c.n, c.a)
		if err != nil {
			b.Fatal(err)
		}
		circ := inst.BuildCircuit()
		b.Run("exact_"+inst.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sim.New()
				res, err := s.Run(circ, sim.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.MaxDDSize), "maxDDnodes")
			}
		})
		b.Run("approx_"+inst.Name()+"_ffinal0.5", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sim.New()
				res, err := s.Run(circ, sim.Options{
					Strategy: core.NewFidelityDriven(0.5, 0.9),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.MaxDDSize), "maxDDnodes")
				b.ReportMetric(float64(len(res.Rounds)), "rounds")
				b.ReportMetric(res.EstimatedFidelity, "fidelity")
			}
		})
	}
}

// --- E5: Shor end-to-end at 50 % fidelity ----------------------------------

func BenchmarkShorFactorAtHalfFidelity(b *testing.B) {
	inst, err := shor.NewInstance(33, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := inst.Run(shor.RunOptions{
			FinalFidelity: 0.5, RoundFidelity: 0.9, Shots: 64, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !out.Factors.Success {
			b.Fatal("failed to factor 33 at 50% fidelity")
		}
		b.ReportMetric(out.Factors.SuccessRate(), "successRate")
	}
}

// --- E8 ablation: threshold sweep (memory-driven hyper-parameters) --------

func BenchmarkAblationThresholdSweep(b *testing.B) {
	cfg := supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 0}
	circ, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, threshold := range []int{1 << 8, 1 << 10, 1 << 12} {
		b.Run(fmt.Sprintf("threshold%d", threshold), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sim.New()
				res, err := s.Run(circ, sim.Options{Strategy: &core.MemoryDriven{
					Threshold: threshold, RoundFidelity: 0.975, Growth: 1.05,
				}})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.MaxDDSize), "maxDDnodes")
				b.ReportMetric(res.EstimatedFidelity, "fidelity")
			}
		})
	}
}

// --- E9 ablation: few-low-fidelity vs many-high-fidelity rounds -----------

func BenchmarkAblationRoundTradeoff(b *testing.B) {
	inst, err := shor.NewInstance(33, 5)
	if err != nil {
		b.Fatal(err)
	}
	circ := inst.BuildCircuit()
	// All configurations guarantee f_final = 0.5 but split it differently
	// (Section IV-C's tradeoff discussion).
	for _, fround := range []float64{0.71, 0.9, 0.99} {
		b.Run(fmt.Sprintf("fround%g", fround), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sim.New()
				res, err := s.Run(circ, sim.Options{
					Strategy: core.NewFidelityDriven(0.5, fround),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.MaxDDSize), "maxDDnodes")
				b.ReportMetric(float64(len(res.Rounds)), "rounds")
			}
		})
	}
}

// --- E10 baseline: dense state-vector vs decision diagrams ----------------

func BenchmarkBaselineDenseVsDD(b *testing.B) {
	workloads := []struct {
		name string
		c    *Circuit
	}{
		{"ghz16", gen.GHZ(16)},
		{"qft14", gen.QFT(14)},
		{"grover12", gen.Grover(12, 0b101010101010, 2)},
	}
	for _, w := range workloads {
		b.Run("dd_"+w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sim.New()
				if _, err := s.Run(w.c, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("dense_"+w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds := dense.NewState(w.c.NumQubits)
				for _, g := range w.c.Gates() {
					u, err := g.Matrix()
					if err != nil {
						b.Fatal(err)
					}
					ctls := make([]dense.ControlSpec, len(g.Controls))
					for k, ct := range g.Controls {
						ctls[k] = dense.ControlSpec{Qubit: ct.Qubit, Positive: ct.Positive}
					}
					ds.ApplyGate(u, g.Target, ctls...)
				}
			}
		})
	}
}

// --- Ablation: matrix-vector vs matrix-matrix application ([31]) ----------

func BenchmarkAblationMatVecVsMatMat(b *testing.B) {
	circ := gen.QFT(10)
	b.Run("matvec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := sim.New()
			if _, err := s.Run(circ, sim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("matmat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := dd.New()
			// Fold the whole circuit into one operation DD, then apply it.
			op := m.Identity(circ.NumQubits)
			for _, g := range circ.Gates() {
				u, err := g.Matrix()
				if err != nil {
					b.Fatal(err)
				}
				gd := m.MakeGateDD(circ.NumQubits, u, g.Target, g.Controls...)
				op = m.MulMat(gd, op)
			}
			state := m.MulVec(op, m.ZeroState(circ.NumQubits))
			if m.IsVZero(state) {
				b.Fatal("state vanished")
			}
		}
	})
}

// --- Micro-benchmarks: approximation primitive and DD operations ----------

func BenchmarkApproximationPrimitive(b *testing.B) {
	m := dd.New()
	rng := rand.New(rand.NewSource(7))
	n := 14
	vec := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range vec {
		re, im := rng.NormFloat64(), rng.NormFloat64()
		vec[i] = complex(re, im)
		norm += re*re + im*im
	}
	for i := range vec {
		vec[i] /= complex(math.Sqrt(norm), 0)
	}
	e, err := m.FromAmplitudes(vec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := core.ApproximateToFidelity(m, e, 0.95)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.SizeBefore-rep.SizeAfter), "nodesRemoved")
	}
}

func BenchmarkDDGateApplication(b *testing.B) {
	s := sim.New()
	circ := gen.RandomCliffordT(12, 200, 3)
	res, err := s.Run(circ, sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	h := s.M.MakeGateDD(12, [4]complex128{
		complex(0.7071067811865476, 0), complex(0.7071067811865476, 0),
		complex(0.7071067811865476, 0), complex(-0.7071067811865476, 0),
	}, 6)
	b.ResetTimer()
	state := res.Final
	for i := 0; i < b.N; i++ {
		state = s.M.MulVec(h, state)
	}
}

func BenchmarkDDInnerProduct(b *testing.B) {
	s := sim.New()
	a, err := s.Run(gen.QFT(14), sim.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// The second run shares the manager: keep a's final state out of the
	// node pool's reach while it executes.
	c, err := s.Run(gen.RandomCliffordT(14, 100, 5), sim.Options{KeepAlive: []dd.VEdge{a.Final}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.M.Fidelity(a.Final, c.Final)
	}
}

// --- Full Table I at the small preset (one row set per iteration) ---------

func BenchmarkTable1SmallPresetFull(b *testing.B) {
	if testing.Short() {
		b.Skip("full table in -short mode")
	}
	suite, err := benchtab.NewSuite(benchtab.PresetSmall)
	if err != nil {
		b.Fatal(err)
	}
	// Trim to one supremacy seed for bench time; cmd/table1 runs all.
	suite.Supremacy = suite.Supremacy[:1]
	suite.Shor = suite.Shor[:2]
	suite.SampleTrue = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.RunMemoryDriven(); err != nil {
			b.Fatal(err)
		}
		if _, err := suite.RunFidelityDriven(); err != nil {
			b.Fatal(err)
		}
	}
}
