// Memory-driven approximation on a quantum-supremacy circuit (the paper's
// Example 9): the DD grows toward the 2^n worst case, the reactive strategy
// caps it, trading fidelity for memory exactly as Table I's first half does.
package main

import (
	"fmt"

	"repro"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/supremacy"
)

func main() {
	cfg := supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 0}
	circ, err := cfg.Generate()
	if err != nil {
		panic(err)
	}
	fmt.Printf("benchmark %s: %d qubits, %d gates, %d cycles\n",
		cfg.Name(), cfg.Qubits(), circ.Len(), cfg.Depth)

	s := repro.NewSimulator()
	exact, err := s.Run(circ, repro.Options{CollectSizeHistory: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nexact:  max DD %6d nodes, runtime %v\n", exact.MaxDDSize, exact.Runtime)

	for _, fround := range []float64{0.99, 0.975, 0.95} {
		s := sim.New()
		res, err := s.Run(circ, sim.Options{Strategy: &core.MemoryDriven{
			Threshold:     1 << 10,
			RoundFidelity: fround,
			Growth:        1.05,
		}})
		if err != nil {
			panic(err)
		}
		fmt.Printf("approx: max DD %6d nodes, runtime %v, rounds %2d, f_round %-5g → f_final %.3f\n",
			res.MaxDDSize, res.Runtime, len(res.Rounds), fround, res.EstimatedFidelity)
	}

	fmt.Println("\nexact size growth over the circuit (every 16th gate):")
	for i := 0; i < len(exact.SizeHistory); i += 16 {
		bar := exact.SizeHistory[i] * 60 / exact.MaxDDSize
		fmt.Printf("  gate %3d %6d |%s\n", i, exact.SizeHistory[i], stars(bar))
	}
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '*'
	}
	return string(s)
}
