// Grover search under approximation: how does removing DD nodes affect the
// probability of measuring the marked element? Grover states are highly
// structured (small DDs), so mild approximation is nearly free — a contrast
// to the supremacy workload and a demonstration of the error tolerance the
// paper's Section III motivates.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	const n = 10
	const marked = uint64(0b1100110011)

	circ := repro.GroverCircuit(n, marked, 0)
	fmt.Printf("Grover on %d qubits, marked |%0*b⟩, %d gates\n",
		n, n, marked, circ.Len())

	// Exact run.
	s := repro.NewSimulator()
	exact, err := s.Run(circ, repro.Options{})
	if err != nil {
		panic(err)
	}
	pExact := s.M.Probability(exact.Final, marked, n)
	fmt.Printf("\nexact:               P(marked) = %.4f, max DD %d nodes\n",
		pExact, exact.MaxDDSize)

	// Fidelity-driven runs with decreasing budgets.
	for _, ffinal := range []float64{0.9, 0.7, 0.5, 0.3} {
		cmp, err := repro.RunAndCompare(circ, repro.Options{
			Strategy: repro.NewFidelityDriven(ffinal, 0.95),
		})
		if err != nil {
			panic(err)
		}
		m := cmp.Approx.Manager
		p := m.Probability(cmp.Approx.Final, marked, n)
		fmt.Printf("f_final ≥ %.1f: P(marked) = %.4f, true fidelity %.4f, rounds %d, max DD %d\n",
			ffinal, p, cmp.TrueFidelity, len(cmp.Approx.Rounds), cmp.Approx.MaxDDSize)
	}

	// Sampling the approximate state still finds the marked element.
	cmp, err := repro.RunAndCompare(circ, repro.Options{
		Strategy: repro.NewFidelityDriven(0.5, 0.95),
	})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(5))
	hits := 0
	const shots = 200
	for i := 0; i < shots; i++ {
		if cmp.Approx.Manager.Sample(cmp.Approx.Final, n, rng) == marked {
			hits++
		}
	}
	fmt.Printf("\nsampling the f≥0.5 state: %d/%d shots hit the marked element\n", hits, shots)
}
