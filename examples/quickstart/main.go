// Quickstart: build a small circuit, simulate it on decision diagrams,
// inspect the DD, and apply one approximation round with a controlled
// fidelity budget — the paper's Fig. 1 / Examples 7–8 walked end to end.
package main

import (
	"fmt"
	"math"

	"repro"
)

func main() {
	// --- 1. Exact simulation of a Bell pair (paper Example 3) -------------
	bell := repro.NewCircuit(2, "bell")
	bell.H(1)
	bell.CX(1, 0)

	s := repro.NewSimulator()
	res, err := s.Run(bell, repro.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("Bell state amplitudes:")
	for i, a := range s.M.ToVector(res.Final, 2) {
		fmt.Printf("  |%02b⟩: %v\n", i, a)
	}

	// --- 2. The paper's Fig. 1 state and its decision diagram -------------
	inv := 1 / math.Sqrt(10)
	fig1, err := s.M.FromAmplitudes([]complex128{
		complex(inv, 0), 0, 0, complex(-inv, 0),
		0, complex(2*inv, 0), 0, complex(2*inv, 0),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nFig. 1 state as a DD (%d nodes):\n%s", repro.CountNodes(fig1), repro.RenderDD(fig1))

	// --- 3. Node contributions (Definition 2, Example 7) ------------------
	fmt.Println("node contributions per level:")
	for node, c := range repro.NodeContributions(s.M, fig1) {
		fmt.Printf("  q%d node #%d: %.3f\n", node.Var, node.ID(), c)
	}

	// --- 4. Approximation rounds with fidelity budgets (Example 8) --------
	// A 0.1 budget removes only the cheapest node (contribution 0.1).
	mild, report, err := repro.ApproximateToFidelity(s.M, fig1, 0.9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nbudget 0.1: %d → %d nodes, achieved fidelity %.3f\n",
		report.SizeBefore, repro.CountNodes(mild), report.Achieved)

	// A 0.3 budget also removes the 0.2-contribution q1 node; because its
	// child overlaps the cheaper removal, only 0.2 mass is actually lost:
	// achieved fidelity 0.8 and the paper's Fig. 1d state.
	var approx repro.VEdge
	approx, report, err = repro.ApproximateToFidelity(s.M, fig1, 0.7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("budget 0.3: %d → %d nodes, achieved fidelity %.3f\n",
		report.SizeBefore, report.SizeAfter, report.Achieved)
	fmt.Printf("resulting state (the paper's Fig. 1d, (|101⟩+|111⟩)/√2):\n%s",
		repro.RenderDD(approx))
	fmt.Printf("true fidelity check: %.3f\n", s.M.Fidelity(fig1, approx))
}
