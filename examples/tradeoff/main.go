// Size–fidelity tradeoff sweep: the series behind Table I's hyper-parameter
// discussion. For a fixed Shor instance, sweep the per-round fidelity with a
// fixed final budget (Section IV-C's "few low-fidelity vs many high-fidelity
// rounds" tradeoff), and for a fixed supremacy instance sweep the
// memory-driven threshold — printing figure-style series.
package main

import (
	"fmt"

	"repro"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/supremacy"
)

func main() {
	shorRoundTradeoff()
	fmt.Println()
	supremacyThresholdSweep()
}

// shorRoundTradeoff: f_final = 0.5 split into different round counts.
func shorRoundTradeoff() {
	inst, err := repro.NewShorInstance(33, 5)
	if err != nil {
		panic(err)
	}
	circ := inst.BuildCircuit()
	fmt.Printf("— %s: round-count tradeoff at f_final = 0.5 —\n", inst.Name())
	fmt.Println("f_round  rounds  maxDD   runtime      tracked-f")
	for _, fround := range []float64{0.51, 0.71, 0.8, 0.9, 0.95, 0.99} {
		strat := repro.NewFidelityDriven(0.5, fround)
		s := sim.New()
		res, err := s.Run(circ, sim.Options{Strategy: strat})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-7g  %-6d  %-6d  %-11v  %.3f\n",
			fround, len(res.Rounds), res.MaxDDSize, res.Runtime, res.EstimatedFidelity)
	}
}

// supremacyThresholdSweep: where should the memory-driven strategy kick in?
func supremacyThresholdSweep() {
	cfg := supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 0}
	circ, err := cfg.Generate()
	if err != nil {
		panic(err)
	}
	fmt.Printf("— %s: threshold sweep at f_round = 0.975 —\n", cfg.Name())

	s := sim.New()
	exact, err := s.Run(circ, sim.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact reference: maxDD %d, runtime %v\n", exact.MaxDDSize, exact.Runtime)

	fmt.Println("threshold  rounds  maxDD   runtime      f_final")
	for _, threshold := range []int{1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12} {
		s := sim.New()
		res, err := s.Run(circ, sim.Options{Strategy: &core.MemoryDriven{
			Threshold:     threshold,
			RoundFidelity: 0.975,
			Growth:        1.05,
		}})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9d  %-6d  %-6d  %-11v  %.3f\n",
			threshold, len(res.Rounds), res.MaxDDSize, res.Runtime, res.EstimatedFidelity)
	}
}
