// Shor at 50 % fidelity: the paper's headline fidelity-driven experiment.
// Simulates shor_33_5 (18 qubits) exactly and with f_final = 0.5,
// f_round = 0.9, then factors 33 from samples of the approximate state —
// demonstrating that half the fidelity still factors correctly, orders of
// magnitude cheaper.
package main

import (
	"fmt"

	"repro"
)

func main() {
	inst, err := repro.NewShorInstance(33, 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("benchmark %s: %d qubits (%d counting + %d work)\n",
		inst.Name(), inst.Qubits, inst.CountingQubits(), inst.Bits)

	exact, err := inst.Run(repro.ShorRunOptions{Shots: 128, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nexact:  max DD %7d nodes, runtime %v\n",
		exact.Sim.MaxDDSize, exact.Sim.Runtime)
	fmt.Printf("        factors: %d × %d (hit rate %.1f%%)\n",
		exact.Factors.Factor1, exact.Factors.Factor2, 100*exact.Factors.SuccessRate())

	approx, err := inst.Run(repro.ShorRunOptions{
		FinalFidelity: 0.5,
		RoundFidelity: 0.9,
		Shots:         128,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\napprox: max DD %7d nodes, runtime %v\n",
		approx.Sim.MaxDDSize, approx.Sim.Runtime)
	fmt.Printf("        %d approximation rounds during the inverse QFT\n", len(approx.Sim.Rounds))
	fmt.Printf("        tracked fidelity %.3f (designed bound %.3f ≥ 0.5)\n",
		approx.Sim.EstimatedFidelity, approx.Sim.FidelityBound)
	if approx.Factors.Success {
		fmt.Printf("        factors: %d × %d (hit rate %.1f%%) — still correct at half fidelity\n",
			approx.Factors.Factor1, approx.Factors.Factor2, 100*approx.Factors.SuccessRate())
	} else {
		fmt.Println("        factoring failed — try more shots")
	}

	fmt.Printf("\nsize reduction: %.1fx, speedup: %.1fx\n",
		float64(exact.Sim.MaxDDSize)/float64(approx.Sim.MaxDDSize),
		float64(exact.Sim.Runtime)/float64(approx.Sim.Runtime))
}
