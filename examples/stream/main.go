// Stream a simulation's mid-run events from a running simd service with the
// typed client: submit an approximated random circuit, watch its gate sizes
// and approximation rounds arrive live over the SSE endpoint, then fetch the
// typed result — the session/observer architecture end to end over HTTP.
//
// Start a server (`go run ./cmd/simd`) and then:
//
//	go run ./examples/stream -addr http://localhost:8555
//
// The process exits non-zero on any failure, so CI uses it as the typed
// client round-trip of the simd smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/client"
)

func main() {
	addr := flag.String("addr", "http://localhost:8555", "simd base URL")
	qubits := flag.Int("qubits", 10, "register width of the random benchmark circuit")
	gates := flag.Int("gates", 200, "gate count of the random benchmark circuit")
	threshold := flag.Int("threshold", 16, "memory-driven node threshold (small = more rounds to watch)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// Build the circuit with the public facade and ship it as QASM.
	circ := repro.RandomCliffordTCircuit(*qubits, *gates, 3)
	qasm, err := repro.ExportQASM(circ)
	if err != nil {
		fatal(err)
	}

	cl := client.New(*addr)
	job, err := cl.Submit(ctx, client.JobRequest{
		Name:          "stream-example",
		QASM:          qasm,
		Strategy:      "memory",
		Threshold:     *threshold,
		RoundFidelity: 0.97,
		Shots:         16,
		// A per-run seed keeps reruns against a long-lived server out of
		// the content cache — a cache hit would skip the simulation and
		// leave nothing to stream.
		Seed: time.Now().UnixNano(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("submitted %s (cached=%v)\n", job.ID, job.Cached)

	// Consume the live event stream: every gate, round, and cleanup as the
	// worker executes them, then the terminal status.
	var gatesSeen, rounds int
	final, err := cl.Stream(ctx, job.ID, func(e client.Event) error {
		switch e.Type {
		case client.EventGate:
			gatesSeen++
			if gatesSeen%50 == 0 {
				fmt.Printf("  gate %4d: %6d nodes\n", e.GateIndex, e.Size)
			}
		case client.EventApproximation:
			rounds++
			fmt.Printf("  round after gate %4d: %6d -> %6d nodes, fidelity %.4f\n",
				e.GateIndex, e.Round.SizeBefore, e.Round.SizeAfter, e.Round.Achieved)
		case client.EventCleanup:
			fmt.Printf("  cleanup after gate %4d: freed %d nodes\n", e.GateIndex, e.Freed)
		case client.EventFinish:
			fmt.Printf("  finished: max %d nodes, %d rounds, fidelity %.4f\n",
				e.MaxSize, e.Rounds, e.Fidelity)
		case client.EventStatus:
			fmt.Printf("  terminal status: %s\n", e.Status)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if final.Status != client.StatusDone {
		fatal(fmt.Errorf("job ended %s: %s", final.Status, final.Error))
	}
	if !job.Cached && (gatesSeen == 0 || rounds == 0) {
		fatal(fmt.Errorf("stream delivered %d gate and %d round events; expected both", gatesSeen, rounds))
	}

	res, err := cl.Result(ctx, job.ID)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("result: %d qubits, %d gates, strategy %s, max DD %d, fidelity %.4f (%d rounds), %.1f ms\n",
		res.NumQubits, res.GateCount, res.Strategy, res.MaxDDSize,
		res.EstimatedFidelity, len(res.Rounds), res.RuntimeMS)
	if !job.Cached && len(res.Rounds) != rounds {
		fatal(fmt.Errorf("streamed %d rounds but result reports %d", rounds, len(res.Rounds)))
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("server: %d jobs done, %d workers, cache %d/%d entries\n",
		stats.Jobs["done"], stats.Pool.Workers, stats.Cache.Entries, stats.Cache.Capacity)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stream:", err)
	os.Exit(1)
}
