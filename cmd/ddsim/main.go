// Command ddsim simulates a quantum circuit with optional approximation.
//
// The circuit comes from an OpenQASM 2.0 file (-qasm) or a builtin generator
// (-gen). Strategies: none (exact), mem (memory-driven), fid
// (fidelity-driven), auto (classify the circuit's gate mix and install the
// committed approximability-atlas winner for its workload class — see
// docs/ATLAS.md).
//
// Examples:
//
//	ddsim -gen qft:12 -shots 8
//	ddsim -gen qaoa:10:2:1 -strategy auto
//	ddsim -gen grover:10:333 -strategy fid -ffinal 0.8 -fround 0.95
//	ddsim -qasm circuit.qasm -optimize -strategy mem -threshold 4096 -fround 0.99
//	ddsim -gen qsup:3x4:16 -strategy mem -threshold 1024 -growth 1.05 -trace
//	ddsim -gen ghz:4 -dot out.dot
//	ddsim -gen qft:12 -order scored -sift
//	ddsim -gen qft:6 -noise depolarizing -noise-param p=0.01 -shots 16
//	ddsim -gen ghz:5 -noise amplitude_damping -noise-param p=0.05 -backend statevector -trace
//
// -order installs a static variable ordering (identity, reversed, scored)
// before simulation; -sift additionally runs dynamic reordering passes when
// the state DD outgrows -sift-threshold. Both compose with -strategy.
//
// -noise applies a per-qubit, per-gate noise channel (depolarizing,
// amplitude_damping, dephasing, bit_flip, phase_flip) parameterized by
// -noise-param key=value pairs (p, gamma, seed). Noisy runs default to the
// density backend, which applies the channel exactly as a superoperator;
// -backend statevector instead samples one Monte-Carlo trajectory.
//
// -trace streams per-gate node counts, approximation rounds, node-pool
// cleanups, and noise-channel applications live (via the simulator's
// observer hooks) instead of waiting for the run to finish.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/atlas"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/order"
	"repro/internal/qasm"
	"repro/internal/sim"
)

func main() {
	qasmPath := flag.String("qasm", "", "OpenQASM 2.0 file to simulate")
	genSpec := flag.String("gen", "", "builtin generator: qft:N | iqft:N | ghz:N | w:N | grover:N[:marked] | bv:N[:secret] | random:N:GATES[:seed] | qsup:RxC:DEPTH[:seed] | qaoa:N[:P[:seed]] | vqe:N[:L[:topo[:seed]]] | cliffordt:N[:GATES[:TCOUNT[:seed]]]")
	strategy := flag.String("strategy", "none", "approximation strategy: none, mem, fid, auto")
	threshold := flag.Int("threshold", 4096, "memory-driven node threshold")
	growth := flag.Float64("growth", 2, "memory-driven threshold growth factor")
	fround := flag.Float64("fround", 0.99, "per-round target fidelity")
	ffinal := flag.Float64("ffinal", 0.5, "fidelity-driven final fidelity bound")
	shots := flag.Int("shots", 0, "samples to draw from the final state")
	seed := flag.Int64("seed", 1, "sampling seed")
	dotPath := flag.String("dot", "", "write the final state DD in Graphviz format")
	history := flag.Bool("history", false, "print the per-gate DD size history")
	trace := flag.Bool("trace", false, "stream per-gate node counts, approximation rounds, and cleanups as they happen")
	optimize := flag.Bool("optimize", false, "peephole-optimize the circuit before simulating")
	orderName := flag.String("order", "", "variable ordering: identity, reversed, or scored (empty = identity without the reordering layer)")
	sift := flag.Bool("sift", false, "enable dynamic sifting passes at the between-gate safe point")
	siftThreshold := flag.Int("sift-threshold", 0, "state-DD node count that triggers a sifting pass (0 = default)")
	noiseKind := flag.String("noise", "", "noise channel: depolarizing, amplitude_damping, dephasing, bit_flip, phase_flip (empty = noiseless)")
	var noiseParams paramFlags
	flag.Var(&noiseParams, "noise-param", "noise parameter as key=value (p, gamma, seed); repeatable")
	backend := flag.String("backend", "", "state representation: statevector or density (empty = statevector, or density when -noise is set)")
	flag.Parse()

	// `ddsim circuit.qasm` is the documented spelling; the single positional
	// argument is the QASM file, and every flag above — including -noise,
	// -noise-param, and -backend — must come before it.
	switch flag.NArg() {
	case 0:
	case 1:
		if *qasmPath != "" {
			fatal(fmt.Errorf("both -qasm %s and positional %s given", *qasmPath, flag.Arg(0)))
		}
		*qasmPath = flag.Arg(0)
	default:
		fatal(fmt.Errorf("at most one positional argument (the QASM file; flags like -noise/-noise-param/-backend must precede it), got %v", flag.Args()))
	}

	circ, err := loadCircuit(*qasmPath, *genSpec)
	if err != nil {
		fatal(err)
	}
	if *optimize {
		var stats opt.Stats
		circ, stats = opt.Optimize(circ)
		fmt.Printf("optimized:  -%d pairs, %d merges, -%d identities (%d passes)\n",
			stats.CancelledPairs, stats.MergedGates, stats.DroppedGates, stats.Passes)
	}

	// Both -history and -trace observe the run through the Observer seam:
	// -trace prints live, -history collects sizes and prints at the end.
	var observers multiObserver
	var collected *sizeCollector
	if *history {
		collected = &sizeCollector{}
		observers = append(observers, collected)
	}
	if *trace {
		observers = append(observers, traceObserver{w: os.Stdout})
	}
	var opts sim.Options
	if len(observers) > 0 {
		opts.Observer = observers
	}
	switch *strategy {
	case "none":
	case "mem":
		opts.Strategy = &core.MemoryDriven{
			Threshold: *threshold, RoundFidelity: *fround, Growth: *growth,
		}
	case "fid":
		opts.Strategy = core.NewFidelityDriven(*ffinal, *fround)
	case "auto":
		// Classify the circuit by gate mix and install the committed
		// approximability-atlas winner for its workload class — the same
		// resolution serve applies to strategy=auto submissions.
		class := gen.Classify(circ)
		win := atlas.Resolve(class)
		st, err := core.NewStrategyByName(win.Strategy, json.RawMessage(win.Params))
		if err != nil {
			fatal(err)
		}
		opts.Strategy = st
		label := win.Base
		if win.Params != "" {
			label += " " + win.Params
		}
		fmt.Printf("auto:       class=%s -> %s (order=%s)\n", class, label, win.Order)
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	if *orderName != "" || *sift {
		static := *orderName
		if static == "" {
			static = order.Identity
		}
		opts.Strategy = order.NewReorder(core.ReorderPolicy{
			Static:        static,
			Sift:          *sift,
			SiftThreshold: *siftThreshold,
		}, opts.Strategy)
	}
	opts.Backend = sim.Backend(*backend)
	if *noiseKind != "" {
		noise, err := sim.ParseNoise(*noiseKind, noiseParams.m)
		if err != nil {
			fatal(err)
		}
		opts.Noise = &noise
		if *backend == "" {
			opts.Backend = sim.BackendDensity // exact noisy simulation by default
		}
	} else if len(noiseParams.m) > 0 {
		fatal(fmt.Errorf("-noise-param given without -noise"))
	}

	s := sim.New()
	res, err := s.Run(circ, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("circuit:    %s\n", circ.String())
	fmt.Printf("strategy:   %s\n", res.StrategyName)
	if res.Backend != sim.BackendStatevector || res.Noise != nil {
		fmt.Printf("backend:    %s\n", res.Backend)
	}
	if res.Noise != nil {
		fmt.Printf("noise:      %s p=%g (%d channel applications)\n",
			res.Noise.Kind, res.Noise.P, res.ChannelApplications)
	}
	fmt.Printf("max DD:     %d nodes\n", res.MaxDDSize)
	fmt.Printf("final DD:   %d nodes\n", res.FinalDDSize)
	if res.Density != nil {
		fmt.Printf("purity:     %.6f\n", res.Purity)
	}
	fmt.Printf("runtime:    %v\n", res.Runtime)
	if res.InitialOrder != nil {
		fmt.Printf("order:      %v", res.FinalOrder)
		if res.SiftPasses > 0 {
			fmt.Printf(" (from %v via %d sift passes, %d swaps)", res.InitialOrder, res.SiftPasses, res.SiftSwaps)
		}
		fmt.Println()
	}
	if len(res.Rounds) > 0 {
		fmt.Printf("rounds:     %d\n", len(res.Rounds))
		fmt.Printf("fidelity:   %.6f (bound %.6f)\n", res.EstimatedFidelity, res.FidelityBound)
		for _, r := range res.Rounds {
			fmt.Printf("  after gate %4d: %6d -> %6d nodes, fidelity %.6f\n",
				r.GateIndex, r.Report.SizeBefore, r.Report.SizeAfter, r.Report.Achieved)
		}
	}
	if *history {
		fmt.Print("size history:")
		for i, sz := range collected.sizes {
			if i%8 == 0 {
				fmt.Printf("\n  gate %4d:", i)
			}
			fmt.Printf(" %7d", sz)
		}
		fmt.Println()
	}
	if *shots > 0 {
		rng := rand.New(rand.NewSource(*seed))
		var hist map[uint64]int
		if res.Density != nil {
			hist = res.Density.SampleMany(*shots, rng)
		} else {
			hist = s.M.SampleMany(res.Final, circ.NumQubits, *shots, rng)
		}
		fmt.Printf("samples (%d shots):\n", *shots)
		printed := 0
		for idx, count := range hist {
			fmt.Printf("  |%0*b⟩: %d\n", circ.NumQubits, idx, count)
			printed++
			if printed >= 32 {
				fmt.Printf("  ... (%d more outcomes)\n", len(hist)-printed)
				break
			}
		}
	}
	if *dotPath != "" {
		if res.Density != nil {
			fatal(fmt.Errorf("-dot renders state DDs; not supported on the density backend"))
		}
		if err := os.WriteFile(*dotPath, []byte(dd.DOT(res.Final, circ.Name)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}
}

// traceObserver prints every simulation event as it happens.
type traceObserver struct{ w io.Writer }

func (o traceObserver) OnGate(e core.GateEvent) {
	fmt.Fprintf(o.w, "gate %4d: %7d nodes\n", e.Index, e.Size)
}

func (o traceObserver) OnApproximation(r core.Round) {
	fmt.Fprintf(o.w, "approx after gate %4d: %6d -> %6d nodes (-%d), fidelity %.6f\n",
		r.GateIndex, r.Report.SizeBefore, r.Report.SizeAfter, r.Report.RemovedNodes, r.Report.Achieved)
}

func (o traceObserver) OnCleanup(e core.CleanupEvent) {
	fmt.Fprintf(o.w, "cleanup after gate %4d: freed %d pooled nodes (%d live)\n", e.GateIndex, e.Freed, e.Live)
}

func (o traceObserver) OnReorder(e core.ReorderEvent) {
	fmt.Fprintf(o.w, "reorder after gate %4d: %6d -> %6d nodes (%d swaps), order %v\n",
		e.GateIndex, e.SizeBefore, e.SizeAfter, e.Swaps, e.Order)
}

func (o traceObserver) OnChannel(e core.ChannelEvent) {
	if e.Branch < 0 {
		fmt.Fprintf(o.w, "channel after gate %4d: %s(p=%g) on qubit %d, %d nodes\n",
			e.GateIndex, e.Kind, e.Strength, e.Qubit, e.Size)
		return
	}
	fmt.Fprintf(o.w, "jump    after gate %4d: %s branch %d on qubit %d, %d nodes\n",
		e.GateIndex, e.Kind, e.Branch, e.Qubit, e.Size)
}

func (o traceObserver) OnFinish(e core.FinishEvent) {
	fmt.Fprintf(o.w, "finished: %d gates, max %d nodes, final %d nodes, %d rounds\n",
		e.GatesApplied, e.MaxDDSize, e.FinalDDSize, e.Rounds)
}

// sizeCollector records the per-gate size history for -history.
type sizeCollector struct {
	core.NopObserver
	sizes []int
}

func (o *sizeCollector) OnGate(e core.GateEvent) { o.sizes = append(o.sizes, e.Size) }

// multiObserver fans events out to several observers.
type multiObserver []core.Observer

func (m multiObserver) OnGate(e core.GateEvent) {
	for _, o := range m {
		o.OnGate(e)
	}
}

func (m multiObserver) OnApproximation(r core.Round) {
	for _, o := range m {
		o.OnApproximation(r)
	}
}

func (m multiObserver) OnCleanup(e core.CleanupEvent) {
	for _, o := range m {
		o.OnCleanup(e)
	}
}

func (m multiObserver) OnReorder(e core.ReorderEvent) {
	for _, o := range m {
		o.OnReorder(e)
	}
}

func (m multiObserver) OnChannel(e core.ChannelEvent) {
	for _, o := range m {
		o.OnChannel(e)
	}
}

func (m multiObserver) OnFinish(e core.FinishEvent) {
	for _, o := range m {
		o.OnFinish(e)
	}
}

// paramFlags collects repeatable key=value flag instances into a map.
type paramFlags struct{ m map[string]float64 }

func (p *paramFlags) String() string { return fmt.Sprint(p.m) }

func (p *paramFlags) Set(s string) error {
	key, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("parameter %s: %v", key, err)
	}
	if p.m == nil {
		p.m = make(map[string]float64)
	}
	p.m[key] = f
	return nil
}

func loadCircuit(qasmPath, genSpec string) (*circuit.Circuit, error) {
	switch {
	case qasmPath != "" && genSpec != "":
		return nil, fmt.Errorf("use either -qasm or -gen, not both")
	case qasmPath != "":
		src, err := os.ReadFile(qasmPath)
		if err != nil {
			return nil, err
		}
		prog, err := qasm.Parse(string(src), qasmPath)
		if err != nil {
			return nil, err
		}
		return prog.Circuit, nil
	case genSpec != "":
		return gen.FromSpec(genSpec)
	default:
		return nil, fmt.Errorf("no circuit given (use -qasm or -gen); try -gen qft:8")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddsim:", err)
	os.Exit(1)
}
