// Command simd-router is the cluster coordinator for simd: it
// consistent-hashes job submissions by their canonical circuit content hash
// across N simd backends (so each backend's result cache stays
// partition-hot), probes backend health with mark-down/mark-up hysteresis,
// reroutes around dead backends, propagates per-backend queue-full
// backpressure as retriable 503s with Retry-After, sheds load when no
// backend is reachable, and aggregates cluster-wide observability on
// GET /v1/cluster/stats.
//
// Usage:
//
//	simd-router -backends http://10.0.0.1:8555,http://10.0.0.2:8555
//	simd-router -addr :8600 -backends ... -route rr     # affinity-free baseline
//	simd-router -probe-interval 500ms -markdown 2 -markup 2
//	simd-router -vnodes 128                             # ring points per backend
//
// Job ids returned through the router carry the owning backend's name
// ("b0.job-000042"); all job-scoped requests (status, result, events,
// cancel) route by that prefix. The process drains gracefully on
// SIGINT/SIGTERM. See docs/API.md for the endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8600", "listen address")
	backends := flag.String("backends", "", "comma-separated simd base URLs (required)")
	names := flag.String("names", "", "comma-separated backend names (default b0,b1,...)")
	route := flag.String("route", cluster.RouteHash, "routing mode: hash (content-hash affinity) or rr (round-robin)")
	vnodes := flag.Int("vnodes", 64, "consistent-hash ring points per backend")
	probeInterval := flag.Duration("probe-interval", time.Second, "/healthz probe cadence")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-probe (and stats fetch) timeout")
	markDown := flag.Int("markdown", 2, "consecutive failures before a backend is marked down")
	markUp := flag.Int("markup", 2, "consecutive healthy probes before a marked-down backend returns")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight requests (0 = wait forever)")
	flag.Parse()

	if *backends == "" {
		fmt.Fprintln(os.Stderr, "simd-router: -backends is required")
		os.Exit(2)
	}
	cfg := cluster.Config{
		Backends:      splitList(*backends),
		Names:         splitList(*names),
		RouteMode:     *route,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		MarkDownAfter: *markDown,
		MarkUpAfter:   *markUp,
	}
	rt, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simd-router:", err)
		os.Exit(1)
	}
	defer rt.Close()
	log.Printf("simd-router: listening on %s (route=%s backends=%d probe=%v hysteresis=%d/%d)",
		*addr, *route, len(cfg.Backends), *probeInterval, *markDown, *markUp)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "simd-router:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	shutdownCtx := context.Background()
	if *grace > 0 {
		var cancel context.CancelFunc
		shutdownCtx, cancel = context.WithTimeout(shutdownCtx, *grace)
		defer cancel()
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "simd-router: shutdown:", err)
		os.Exit(1)
	}
	log.Printf("simd-router: shut down cleanly")
}

// splitList splits a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
