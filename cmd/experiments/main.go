// Command experiments regenerates the measured data behind EXPERIMENTS.md:
// Table I (both halves) at the chosen scale, the hyper-parameter sweeps
// (E8/E9), the paper's worked examples (E3/E7), the Lemma 1 / fidelity
// tracking validation (E6), and the noisy-fidelity comparison of the
// density-matrix backend against quantum-trajectory sampling (E12), and the
// approximability-atlas winner table behind serving's strategy=auto (E13),
// as one markdown report on stdout.
//
// Usage:
//
//	experiments                # small scale (~1 min)
//	experiments -scale medium  # ~10 min
//	experiments -parallel 0    # fan simulations out across all CPUs
//	experiments -verbose       # append DD memory-system stats (per-cache
//	                           # hits/misses/evictions, pool and weight-table
//	                           # pressure) from a representative run
//	experiments -reuse         # recycle pooled DD memory across sweep jobs
//	experiments -seed 42       # pin per-job measurement seeds
//
// The report header carries the resolved worker count and seed, so every
// published number is reproducible from the report itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/benchtab"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/dd"
	"repro/internal/density"
	"repro/internal/gen"
	"repro/internal/order"
	"repro/internal/shor"
	"repro/internal/sim"
	"repro/internal/supremacy"
)

func main() {
	scale := flag.String("scale", benchtab.PresetSmall, "preset: small, medium, or paper")
	parallel := flag.Int("parallel", 1, "simulation workers for Table I and the sweeps (0 = one per CPU)")
	verbose := flag.Bool("verbose", false, "append DD memory-system statistics (per-cache hits/misses/evictions, node pool, weight table)")
	reuse := flag.Bool("reuse", false, "keep one DD manager per worker across sweep jobs, resetting it between jobs (results stay bit-identical; warm jobs run out of retained pool memory)")
	seed := flag.Int64("seed", 0, "base seed for per-job measurement seeds")
	flag.Parse()
	workers := benchtab.Workers(*parallel)
	runOpts := benchtab.RunOptions{Parallel: workers, Reuse: *reuse, BaseSeed: *seed}

	// The header carries the resolved worker count and seed so every number
	// in a published report is reproducible from the report itself.
	fmt.Printf("# Experiment report (%s scale, workers=%d, seed=%d)\n\n", *scale, workers, *seed)

	report("E3/E7 — paper figures and worked examples", paperExamples)
	report("E1/E2 — Table I", func() error { return table1(*scale, runOpts) })
	report("E8 — memory-driven threshold sweep", func() error { return thresholdSweep(runOpts) })
	report("E10 — variable-ordering sweep (nodes saved per ordering)", func() error { return orderingSweep(runOpts) })
	report("E9 — fidelity-driven round tradeoff", func() error { return roundTradeoff(runOpts) })
	report("E11 — delete-vs-replace fidelity/size frontier", func() error { return replaceFrontier(runOpts) })
	report("E6 — fidelity tracking validation", fidelityTracking)
	report("E12 — noisy fidelity: density backend vs quantum trajectories", noisyFidelity)
	report("E13 — approximability atlas (per-class strategy × ordering winners)", func() error { return atlasWinners(runOpts) })
	report("E5 — Shor at 50% fidelity", shorHalfFidelity)
	if *verbose {
		report("DD memory system — per-cache and pool statistics", memorySystemStats)
	}
}

func report(title string, f func() error) {
	fmt.Printf("## %s\n\n", title)
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", title, err)
		fmt.Printf("FAILED: %v\n\n", err)
		return
	}
	fmt.Println()
}

func paperExamples() error {
	m := dd.New()
	s := 1 / math.Sqrt(10)
	fig1, err := m.FromAmplitudes([]complex128{
		complex(s, 0), 0, 0, complex(-s, 0),
		0, complex(2*s, 0), 0, complex(2*s, 0),
	})
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 1b DD: %d nodes (maximally shared; paper draws 6)\n", dd.CountVNodes(fig1))
	fmt.Printf("Example 4:  amplitude(|011⟩) = %v (paper: −1/√10 = %.6f)\n",
		m.Amplitude(fig1, 0b011, 3), -s)
	contribs := core.Contributions(m, fig1)
	fmt.Println("Example 7:  contributions per node:")
	for n, c := range contribs {
		fmt.Printf("  q%d: %.3f\n", n.Var, c)
	}
	approx, rep, err := core.ApproximateToFidelity(m, fig1, 0.7)
	if err != nil {
		return err
	}
	fmt.Printf("Example 8:  removal with 0.3 budget → %d nodes, fidelity %.3f (paper: Fig. 1d at 0.8)\n",
		dd.CountVNodes(approx), rep.Achieved)

	psi, _ := m.FromAmplitudes([]complex128{0.5, 0.5, 0.5, 0.5})
	s2 := complex(1/math.Sqrt2, 0)
	phi, _ := m.FromAmplitudes([]complex128{s2, 0, 0, s2})
	fmt.Printf("Example 5:  F = %.3f (paper: 0.5)\n", m.Fidelity(psi, phi))
	return nil
}

func table1(scale string, opts benchtab.RunOptions) error {
	suite, err := benchtab.NewSuite(scale)
	if err != nil {
		return err
	}
	ctx := context.Background()
	mem, err := suite.RunMemoryDrivenBatch(ctx, opts)
	if err != nil {
		return err
	}
	fid, err := suite.RunFidelityDrivenBatch(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Print(benchtab.FormatMarkdown(append(mem, fid...)))
	return nil
}

func thresholdSweep(opts benchtab.SweepOptions) error {
	cfg := supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 0}
	c, err := cfg.Generate()
	if err != nil {
		return err
	}
	points, err := benchtab.SweepThresholdBatch(context.Background(), c,
		[]int{256, 512, 1024, 2048, 4096}, 0.975, 1.05, opts)
	if err != nil {
		return err
	}
	fmt.Print(benchtab.FormatSweepMarkdown(points))
	return nil
}

func orderingSweep(opts benchtab.SweepOptions) error {
	cfg := supremacy.Config{Rows: 3, Cols: 4, Depth: 12, Seed: 0}
	sup, err := cfg.Generate()
	if err != nil {
		return err
	}
	pairs := circuit.New(16, "pairs_16")
	for i := 0; i < 8; i++ {
		pairs.H(i)
		pairs.CX(i, i+8)
	}
	points, err := benchtab.SweepOrderings(context.Background(),
		[]*circuit.Circuit{pairs, gen.QFT(14), sup},
		[]string{order.Reversed, order.Scored}, true, opts)
	if err != nil {
		return err
	}
	fmt.Print(benchtab.FormatOrderMarkdown(points))
	return nil
}

func roundTradeoff(opts benchtab.SweepOptions) error {
	inst, err := shor.NewInstance(33, 5)
	if err != nil {
		return err
	}
	points, err := benchtab.SweepRoundFidelityBatch(context.Background(), inst,
		[]float64{0.51, 0.71, 0.8, 0.9, 0.95, 0.99}, 0.5, opts)
	if err != nil {
		return err
	}
	fmt.Print(benchtab.FormatSweepMarkdown(points))
	return nil
}

func replaceFrontier(opts benchtab.SweepOptions) error {
	circs, err := benchtab.FrontierCircuits()
	if err != nil {
		return err
	}
	points, err := benchtab.SweepFrontier(context.Background(), circs,
		[]int{16, 24, 32, 48, 64}, nil, opts)
	if err != nil {
		return err
	}
	fmt.Print(benchtab.FormatFrontierMarkdown(points))
	return nil
}

func atlasWinners(opts benchtab.RunOptions) error {
	a, err := benchtab.SweepAtlas(context.Background(), opts)
	if err != nil {
		return err
	}
	fmt.Print(benchtab.FormatAtlasMarkdown(a))
	fmt.Println("\nFull grid: docs/ATLAS.md (regenerate with `make atlas`; serving's strategy=auto resolves from this table).")
	return nil
}

func fidelityTracking() error {
	cfg := supremacy.Config{Rows: 3, Cols: 3, Depth: 20, Seed: 1}
	c, err := cfg.Generate()
	if err != nil {
		return err
	}
	cmp, err := sim.RunAndCompare(c, sim.Options{
		Strategy: &core.MemoryDriven{Threshold: 64, RoundFidelity: 0.97, Growth: 1.1},
	})
	if err != nil {
		return err
	}
	fmt.Printf("rounds: %d, tracked fidelity: %.6f, true fidelity: %.6f, |error|: %.2e, bound: %.6f\n",
		len(cmp.Approx.Rounds), cmp.Approx.EstimatedFidelity, cmp.TrueFidelity,
		cmp.EstimateError, cmp.Approx.FidelityBound)
	if cmp.TrueFidelity < cmp.Approx.FidelityBound-1e-6 {
		return fmt.Errorf("bound violated")
	}
	return nil
}

// noisyFidelity sweeps noise strength on the QFT and reports, per channel
// kind, the exact fidelity ⟨ideal|ρ|ideal⟩ and purity from the density-matrix
// backend against the Monte-Carlo estimate from quantum-trajectory sampling —
// the experiment behind the backend's differential acceptance test.
func noisyFidelity() error {
	c := gen.QFT(6)
	const trajectories = 96
	fmt.Printf("workload: %s, %d trajectories per estimate\n\n", c.Name, trajectories)
	fmt.Println("| channel | p | density fidelity | purity | trajectory mean | |Δ| |")
	fmt.Println("|---------|--:|-----------------:|-------:|----------------:|----:|")
	for _, kind := range []density.Kind{density.Depolarizing, density.AmplitudeDamping} {
		for _, p := range []float64{0.005, 0.02, 0.05} {
			noise := sim.NoiseModel{Kind: kind, P: p, Seed: 1}

			s := sim.New()
			ideal, err := s.Run(c, sim.Options{})
			if err != nil {
				return err
			}
			den, err := s.Run(c, sim.Options{
				Backend:   sim.BackendDensity,
				Noise:     &noise,
				KeepAlive: []dd.VEdge{ideal.Final},
			})
			if err != nil {
				return err
			}
			exact := den.Density.FidelityPure(ideal.Final)

			est, err := sim.TrajectoryFidelity(c, noise, trajectories)
			if err != nil {
				return err
			}
			fmt.Printf("| %s | %g | %.6f | %.6f | %.6f | %.4f |\n",
				kind, p, exact, den.Purity, est, math.Abs(est-exact))
		}
	}
	return nil
}

// memorySystemStats runs the E8 supremacy circuit (exact, then memory-driven
// approximate) on one manager and reports the DD memory system's per-cache
// hit/miss/eviction counters, node-pool traffic, and weight-table pressure.
func memorySystemStats() error {
	cfg := supremacy.Config{Rows: 3, Cols: 4, Depth: 16, Seed: 0}
	c, err := cfg.Generate()
	if err != nil {
		return err
	}
	s := sim.New()
	if _, err := s.Run(c, sim.Options{}); err != nil {
		return err
	}
	s.Recycle()
	res, err := s.Run(c, sim.Options{
		Strategy: &core.MemoryDriven{Threshold: 1 << 10, RoundFidelity: 0.975, Growth: 1.05},
	})
	if err != nil {
		return err
	}
	st := res.DDStats
	fmt.Printf("workload: %s exact + memory-driven on one manager (Recycle between runs)\n\n", cfg.Name())
	fmt.Println("| cache | hits | misses | evictions | hit ratio |")
	fmt.Println("|-------|-----:|-------:|----------:|----------:|")
	for _, row := range []struct {
		name string
		cs   dd.CacheStats
	}{
		{"add", st.Add}, {"madd", st.MAdd}, {"mul", st.Mul}, {"mm", st.MM}, {"ip", st.IP},
	} {
		fmt.Printf("| %s | %d | %d | %d | %.3f |\n",
			row.name, row.cs.Hits, row.cs.Misses, row.cs.Evictions, row.cs.HitRatio())
	}
	pool := res.Manager.Pool()
	fmt.Printf("\nnodes: %d vector + %d matrix created, %d recycled from pools; unique tables %d+%d live; pool %d live / %d free / %d capacity; %d cleanups\n",
		st.VNodesCreated, st.MNodesCreated, st.VNodesRecycled+st.MNodesRecycled,
		st.VUniqueSize, st.MUniqueSize, pool.Live, pool.Free, pool.Capacity, st.Cleanups)
	wt := res.WeightTable
	fmt.Printf("weight table: %d interned values (peak %d), %d lookups this run, hit ratio %.4f\n",
		st.ComplexValues, wt.Peak, wt.Lookups, wt.HitRatio())
	return nil
}

func shorHalfFidelity() error {
	inst, err := shor.NewInstance(33, 5)
	if err != nil {
		return err
	}
	out, err := inst.Run(shor.RunOptions{FinalFidelity: 0.5, RoundFidelity: 0.9, Shots: 128, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("%s at f_final=0.5: factors %d × %d, hit rate %.1f%%, max DD %d, runtime %v\n",
		inst.Name(), out.Factors.Factor1, out.Factors.Factor2,
		100*out.Factors.SuccessRate(), out.Sim.MaxDDSize, out.Sim.Runtime)
	if !out.Factors.Success {
		return fmt.Errorf("factoring failed")
	}
	return nil
}
