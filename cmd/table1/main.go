// Command table1 regenerates Table I of the paper at a chosen scale.
//
// Usage:
//
//	table1 -scale small            # laptop-scale reproduction (default)
//	table1 -scale medium           # minutes
//	table1 -scale paper            # the original instances; hours, 3 h timeouts
//	table1 -part mem|fid|all       # which half of the table
//	table1 -parallel 8             # fan simulations out across 8 workers
//	table1 -parallel 0             # one worker per CPU
//	table1 -seed 42                # pin per-job measurement seeds
//	table1 -csv                    # CSV instead of markdown
//
// The -parallel flag changes only the wall-clock time: rows are identical
// to the serial run apart from the timing columns. The resolved worker
// count and seed are echoed in the header (and to stderr), so published
// tables are reproducible from their own logs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchtab"
)

func main() {
	scale := flag.String("scale", benchtab.PresetSmall, "preset: small, medium, or paper")
	part := flag.String("part", "all", "table half: mem, fid, or all")
	csv := flag.Bool("csv", false, "emit CSV instead of markdown")
	parallel := flag.Int("parallel", 1, "simulation workers (0 = one per CPU)")
	seed := flag.Int64("seed", 0, "base seed for per-job measurement seeds")
	flag.Parse()

	suite, err := benchtab.NewSuite(*scale)
	if err != nil {
		fatal(err)
	}
	if err := suite.Validate(); err != nil {
		fatal(err)
	}

	ctx := context.Background()
	opts := benchtab.RunOptions{
		Parallel: benchtab.Workers(*parallel),
		BaseSeed: *seed,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d simulations", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	// Echo the resolved configuration so published numbers are reproducible
	// from their own logs.
	fmt.Fprintf(os.Stderr, "table1: scale=%s workers=%d seed=%d\n",
		suite.Name, opts.Parallel, opts.BaseSeed)

	var rows []benchtab.Row
	if *part == "mem" || *part == "all" {
		fmt.Fprintf(os.Stderr, "running memory-driven half (%d supremacy cases, %d workers)...\n",
			len(suite.Supremacy), opts.Parallel)
		r, err := suite.RunMemoryDrivenBatch(ctx, opts)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, r...)
	}
	if *part == "fid" || *part == "all" {
		fmt.Fprintf(os.Stderr, "running fidelity-driven half (%d Shor cases, %d workers)...\n",
			len(suite.Shor), opts.Parallel)
		r, err := suite.RunFidelityDrivenBatch(ctx, opts)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, r...)
	}
	if *part != "mem" && *part != "fid" && *part != "all" {
		fatal(fmt.Errorf("unknown -part %q", *part))
	}

	if *csv {
		fmt.Print(benchtab.FormatCSV(rows))
	} else {
		fmt.Printf("Table I (%s preset, workers=%d, seed=%d)\n\n%s",
			suite.Name, opts.Parallel, opts.BaseSeed, benchtab.FormatMarkdown(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "table1:", err)
	os.Exit(1)
}
