// Command table1 regenerates Table I of the paper at a chosen scale.
//
// Usage:
//
//	table1 -scale small            # laptop-scale reproduction (default)
//	table1 -scale medium           # minutes
//	table1 -scale paper            # the original instances; hours, 3 h timeouts
//	table1 -part mem|fid|all       # which half of the table
//	table1 -csv                    # CSV instead of markdown
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchtab"
)

func main() {
	scale := flag.String("scale", benchtab.PresetSmall, "preset: small, medium, or paper")
	part := flag.String("part", "all", "table half: mem, fid, or all")
	csv := flag.Bool("csv", false, "emit CSV instead of markdown")
	flag.Parse()

	suite, err := benchtab.NewSuite(*scale)
	if err != nil {
		fatal(err)
	}
	if err := suite.Validate(); err != nil {
		fatal(err)
	}

	var rows []benchtab.Row
	if *part == "mem" || *part == "all" {
		fmt.Fprintf(os.Stderr, "running memory-driven half (%d supremacy cases)...\n", len(suite.Supremacy))
		r, err := suite.RunMemoryDriven()
		if err != nil {
			fatal(err)
		}
		rows = append(rows, r...)
	}
	if *part == "fid" || *part == "all" {
		fmt.Fprintf(os.Stderr, "running fidelity-driven half (%d Shor cases)...\n", len(suite.Shor))
		r, err := suite.RunFidelityDriven()
		if err != nil {
			fatal(err)
		}
		rows = append(rows, r...)
	}
	if *part != "mem" && *part != "fid" && *part != "all" {
		fatal(fmt.Errorf("unknown -part %q", *part))
	}

	if *csv {
		fmt.Print(benchtab.FormatCSV(rows))
	} else {
		fmt.Printf("Table I (%s preset)\n\n%s", suite.Name, benchtab.FormatMarkdown(rows))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "table1:", err)
	os.Exit(1)
}
