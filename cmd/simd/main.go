// Command simd serves DD-based quantum circuit simulation over HTTP:
// asynchronous job submission (OpenQASM 2.0 or inline gate lists) with
// per-job approximation strategies, a bounded worker pool, and a
// content-addressed result cache that deduplicates identical submissions.
//
// Usage:
//
//	simd                          # listen on :8555, one worker per CPU
//	simd -addr 127.0.0.1:9000     # custom listen address
//	simd -workers 8 -queue 64     # pool sizing (queue full → HTTP 503)
//	simd -cache 4096              # result-cache entries (0 disables)
//	simd -timeout 5m              # default per-job simulation timeout
//	simd -max-qubits 32           # reject wider circuits (0 = unlimited)
//	simd -events 4096             # per-job event-stream buffer (SSE)
//	simd -reuse                   # reuse DD managers across jobs (faster,
//	                              # results not bit-reproducible)
//	simd -grace 30s               # shutdown grace period for live jobs
//
// The process shuts down gracefully on SIGINT/SIGTERM: the listener closes,
// queued and running jobs get the grace period to finish, then remaining
// jobs are canceled. See docs/API.md for the endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8555", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = one per CPU)")
	queue := flag.Int("queue", 0, "submission queue depth (0 = 4x workers)")
	cache := flag.Int("cache", 1024, "result-cache entries (0 disables caching)")
	timeout := flag.Duration("timeout", 0, "default per-job timeout (0 = none; jobs may override via timeout_ms)")
	maxQubits := flag.Int("max-qubits", 0, "reject circuits wider than this (0 = unlimited)")
	maxShots := flag.Int("max-shots", 0, "reject submissions requesting more samples (0 = unlimited)")
	maxJobs := flag.Int("max-jobs", 4096, "retained finished jobs before the oldest are evicted (0 = unlimited)")
	events := flag.Int("events", 1024, "per-job event buffer for GET /v1/jobs/{id}/events (oldest events evicted beyond this)")
	reuse := flag.Bool("reuse", false, "reuse DD managers across jobs (warm memory; results stay bit-identical)")
	prewarm := flag.Int("prewarm", 0, "pre-allocate this many DD node slots per worker (implies -reuse)")
	retain := flag.Int("retain", 0, "trim a worker arena above this node capacity when idle (0 = unbounded; implies -reuse)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for in-flight jobs (0 = wait forever)")
	flag.Parse()

	cfg := serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheEntries:      *cache,
		DefaultJobTimeout: *timeout,
		MaxQubits:         *maxQubits,
		MaxShots:          *maxShots,
		MaxJobs:           *maxJobs,
		EventBufferSize:   *events,
		ReuseManagers:     *reuse || *prewarm > 0 || *retain > 0,
	}
	cfg.Arena.PrewarmNodes = *prewarm
	cfg.Arena.MaxRetainedNodes = *retain
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = -1 // flag's 0 means unlimited; Config treats 0 as "default"
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = -1 // Config treats 0 as "default"; the flag's 0 means off
	}

	resolvedWorkers := cfg.Workers
	if resolvedWorkers <= 0 {
		resolvedWorkers = runtime.GOMAXPROCS(0)
	}
	log.Printf("simd: listening on %s (workers=%d cache=%d timeout=%v reuse=%v)",
		*addr, resolvedWorkers, *cache, *timeout, *reuse)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve.Serve(ctx, *addr, cfg, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "simd:", err)
		os.Exit(1)
	}
	log.Printf("simd: shut down cleanly")
}
