// Command loadgen is the cluster latency harness: it boots a local simd
// cluster (simd-router semantics + K backends, all in-process on loopback),
// drives phase-timed open-loop load sweeps over qubit counts × strategies ×
// offered RPS under both routing modes, and writes the measured
// p50/p95/p99 latency, throughput, and cluster cache hit rates to
// BENCH_cluster.json (schema bench-cluster/v1), which `make bench-check`
// gates against the committed bench_cluster_baseline.json.
//
// Usage:
//
//	loadgen -out BENCH_cluster.json
//	loadgen -backends 3 -qubits 4,8 -strategies exact,memory -rps 60 -phase 3s
//
// See internal/loadgen for the harness and docs/ARCHITECTURE.md for the
// cluster tier it measures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	out := flag.String("out", "BENCH_cluster.json", "report file to write")
	backends := flag.Int("backends", 2, "number of simd backends behind the router")
	workers := flag.Int("workers", 1, "worker-pool size per backend")
	qubits := flag.String("qubits", "4", "comma-separated GHZ circuit widths to sweep")
	strategies := flag.String("strategies", "exact", "comma-separated strategies to sweep")
	rps := flag.Float64("rps", 40, "offered submissions per second per phase")
	phase := flag.Duration("phase", 2*time.Second, "duration of one (route, qubits, strategy) phase")
	workingSet := flag.Int("working-set", 5, "distinct circuits cycled per phase (keep coprime with -backends)")
	routes := flag.String("routes", "hash,rr", "routing modes to compare")
	vnodes := flag.Int("vnodes", 64, "ring points per backend")
	flag.Parse()

	qs, err := splitInts(*qubits)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: -qubits:", err)
		os.Exit(2)
	}
	opts := loadgen.Options{
		Backends:   *backends,
		Workers:    *workers,
		Qubits:     qs,
		Strategies: splitList(*strategies),
		RPS:        *rps,
		Phase:      *phase,
		WorkingSet: *workingSet,
		Routes:     splitList(*routes),
		VNodes:     *vnodes,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Sweep(ctx, opts, func(line string) { fmt.Println(line) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("loadgen: %d phases -> %s (hash hit %.0f%% vs rr %.0f%%, hash p99 %.1fms)\n",
		len(rep.Runs), *out, 100*rep.Aggregate.HashHitRate, 100*rep.Aggregate.RRHitRate, rep.Aggregate.HashP99MS)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
