// Command equiv checks two OpenQASM 2.0 circuits for equivalence using
// decision diagrams (V†·U ≟ λ·I), the verification flow of the JKQ tool
// family the paper's simulator belongs to.
//
// Usage:
//
//	equiv a.qasm b.qasm          # full unitary equivalence (up to phase)
//	equiv -state a.qasm b.qasm   # equal action on |0...0⟩ only
//
// Exit status: 0 equivalent, 2 not equivalent, 1 error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/qasm"
	"repro/internal/verify"
)

func main() {
	stateOnly := flag.Bool("state", false, "compare action on |0...0⟩ instead of full unitaries")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: equiv [-state] a.qasm b.qasm")
		os.Exit(1)
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	if *stateOnly {
		ok, fidelity, err := verify.StateEquivalent(a, b)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("state fidelity: %.12f\n", fidelity)
		if !ok {
			fmt.Println("NOT state-equivalent")
			os.Exit(2)
		}
		fmt.Println("state-equivalent")
		return
	}

	res, err := verify.Equivalent(a, b)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("max intermediate DD: %d nodes\n", res.MaxDDSize)
	if !res.Equivalent {
		fmt.Println("NOT equivalent")
		os.Exit(2)
	}
	fmt.Printf("equivalent (global phase %v)\n", res.Phase)
}

func load(path string) (*circuit.Circuit, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := qasm.Parse(string(src), path)
	if err != nil {
		return nil, err
	}
	return prog.Circuit, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "equiv:", err)
	os.Exit(1)
}
