// Command shorfactor factors an integer with Shor's algorithm on the DD
// simulator, optionally with fidelity-driven approximation (the paper's
// Table I setup: f_final = 0.5, f_round = 0.9).
//
// Examples:
//
//	shorfactor 15
//	shorfactor -a 5 -ffinal 0.5 -fround 0.9 33    # flags before N
//	shorfactor -N 55 -a 2 -dump       # print the circuit structure (Fig. 2)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/shor"
)

func main() {
	n := flag.Uint64("N", 15, "odd composite to factor")
	a := flag.Uint64("a", 0, "coprime base (0 = search automatically)")
	ffinal := flag.Float64("ffinal", 0, "final fidelity bound; 0 disables approximation")
	fround := flag.Float64("fround", 0.9, "per-round fidelity for the fidelity-driven strategy")
	shots := flag.Int("shots", 128, "samples for the classical post-processing")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.Bool("dump", false, "print the circuit block structure and exit")
	flag.Parse()

	// `shorfactor 33` is the documented spelling; a positional argument is
	// the number to factor (and overrides -N rather than being dropped).
	switch flag.NArg() {
	case 0:
	case 1:
		v, err := strconv.ParseUint(flag.Arg(0), 10, 64)
		if err != nil {
			fatal(fmt.Errorf("N must be an integer, got %q", flag.Arg(0)))
		}
		*n = v
	default:
		fatal(fmt.Errorf("at most one positional argument (the number to factor), got %v", flag.Args()))
	}

	if *dump {
		base := *a
		if base == 0 {
			base = 2
		}
		inst, err := shor.NewInstance(*n, base)
		if err != nil {
			fatal(err)
		}
		c := inst.BuildCircuit()
		fmt.Printf("%s\n", c.String())
		fmt.Printf("work register:     qubits [0,%d)\n", inst.Bits)
		fmt.Printf("counting register: qubits [%d,%d)\n", inst.Bits, inst.Qubits)
		fmt.Printf("block boundaries (gate indices): %v\n", c.Blocks())
		fmt.Printf("gate histogram: %v\n", c.CountByName())
		return
	}

	opts := shor.RunOptions{
		FinalFidelity: *ffinal,
		RoundFidelity: *fround,
		Shots:         *shots,
		Seed:          *seed,
	}

	var out *shor.Outcome
	var err error
	if *a != 0 {
		inst, ierr := shor.NewInstance(*n, *a)
		if ierr != nil {
			fatal(ierr)
		}
		out, err = inst.Run(opts)
	} else {
		out, err = shor.Factor(*n, opts)
	}
	if err != nil {
		fatal(err)
	}

	if out.Sim != nil {
		fmt.Printf("instance:   %s (%d qubits)\n", out.Instance.Name(), out.Instance.Qubits)
		fmt.Printf("max DD:     %d nodes\n", out.Sim.MaxDDSize)
		fmt.Printf("runtime:    %v\n", out.Sim.Runtime)
		if len(out.Sim.Rounds) > 0 {
			fmt.Printf("rounds:     %d (fidelity %.4f, bound %.4f)\n",
				len(out.Sim.Rounds), out.Sim.EstimatedFidelity, out.Sim.FidelityBound)
		}
	}
	if out.Factors.Success {
		fmt.Printf("factors:    %d = %d × %d\n", *n, out.Factors.Factor1, out.Factors.Factor2)
		fmt.Printf("hit rate:   %d/%d shots produced factors (%.1f%%)\n",
			out.Factors.FactorHits, out.Factors.Shots, 100*out.Factors.SuccessRate())
	} else {
		fmt.Printf("no factors found in %d shots (try another -a or more shots)\n", out.Factors.Shots)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shorfactor:", err)
	os.Exit(1)
}
