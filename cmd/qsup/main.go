// Command qsup runs a quantum-supremacy circuit exactly and with the
// memory-driven approximation, printing a Table-I-style comparison row
// (the paper's Example 9 scenario).
//
// Example:
//
//	qsup -grid 3x4 -depth 16 -seed 0 -threshold 1024 -fround 0.975 -growth 1.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/supremacy"
)

func main() {
	grid := flag.String("grid", "3x4", "qubit grid RxC")
	depth := flag.Int("depth", 16, "clock cycles after the initial H layer")
	seed := flag.Int64("seed", 0, "instance seed")
	threshold := flag.Int("threshold", 1024, "memory-driven node threshold")
	fround := flag.Float64("fround", 0.975, "per-round target fidelity")
	growth := flag.Float64("growth", 1.05, "threshold growth per round (paper: 2)")
	skipExact := flag.Bool("skip-exact", false, "skip the exact reference run")
	flag.Parse()

	dims := strings.Split(*grid, "x")
	if len(dims) != 2 {
		fatal(fmt.Errorf("bad -grid %q", *grid))
	}
	rows, err := strconv.Atoi(dims[0])
	if err != nil {
		fatal(err)
	}
	cols, err := strconv.Atoi(dims[1])
	if err != nil {
		fatal(err)
	}

	cfg := supremacy.Config{Rows: rows, Cols: cols, Depth: *depth, Seed: *seed}
	circ, err := cfg.Generate()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark: %s (%d qubits, %d gates)\n", cfg.Name(), cfg.Qubits(), circ.Len())

	if !*skipExact {
		s := sim.New()
		res, err := s.Run(circ, sim.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact:  max DD %8d nodes   runtime %v\n", res.MaxDDSize, res.Runtime)
	}

	s := sim.New()
	res, err := s.Run(circ, sim.Options{Strategy: &core.MemoryDriven{
		Threshold: *threshold, RoundFidelity: *fround, Growth: *growth,
	}})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("approx: max DD %8d nodes   runtime %v   rounds %d   f_round %g   f_final %.4f\n",
		res.MaxDDSize, res.Runtime, len(res.Rounds), *fround, res.EstimatedFidelity)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qsup:", err)
	os.Exit(1)
}
