// Package repro is a Go reproduction of "As Accurate as Needed, as Efficient
// as Possible: Approximations in DD-based Quantum Circuit Simulation"
// (Hillmich, Kueng, Markov, Wille — DATE 2021, arXiv:2012.05615).
//
// It provides a complete decision-diagram quantum circuit simulator with the
// paper's two approximation strategies:
//
//   - memory-driven (reactive): approximate whenever the state DD exceeds a
//     node-count threshold, growing the threshold after each round;
//   - fidelity-driven (proactive): plan ⌊log_fround(f_final)⌋ rounds at
//     circuit block boundaries, guaranteeing a final-fidelity budget.
//
// The package re-exports the user-facing API of the internal packages; see
// README.md for a tour, DESIGN.md for the architecture, and EXPERIMENTS.md
// for the Table I reproduction.
//
// Quick start:
//
//	c := repro.NewCircuit(2, "bell")
//	c.H(1)
//	c.CX(1, 0)
//	s := repro.NewSimulator()
//	res, err := s.Run(c, repro.Options{})
//	// res.Final is the state DD; sample or inspect amplitudes via s.M.
//
// Batch simulation: the paper's tables and hyper-parameter sweeps are many
// independent runs, and BatchRun fans them out across a worker pool (one DD
// manager per worker) with deterministic per-job seeding, context
// cancellation, and per-job deadlines. Results are bit-identical for any
// worker count and manager-reuse mode, timing fields aside:
//
//	res, err := repro.BatchRun(ctx, jobs,
//		repro.WithWorkers(4), repro.WithReuseManagers())
//
// The same engine backs Table1Suite.RunMemoryDrivenBatch /
// RunFidelityDrivenBatch and the benchtab sweep drivers; the table1 and
// experiments commands expose it as -parallel N.
//
// Simulation as a service: NewServer (and the standalone simd command)
// wraps the batch engine in an asynchronous HTTP/JSON API — submit circuits
// (OpenQASM 2.0 or inline gate lists) with per-job approximation strategy,
// shots, seed, and deadline; poll status; fetch results; cancel. Identical
// submissions are deduplicated through a content-addressed LRU result cache
// keyed on the canonical circuit+options hash, with hit/miss counters on
// /v1/stats. See docs/API.md for the endpoint reference and
// docs/ARCHITECTURE.md for how the layers stack.
//
// Memory system: the DD substrate interns nodes in per-variable hashed
// unique tables with intrusive bucket chains, serves node allocations from
// pooled chunks with free-list recycling, and runs bounded power-of-two
// compute caches with overwrite-on-collision eviction and O(1)
// generation-bump invalidation. Cleanup is a mark-sweep collector over the
// pools, so long-running and batch workloads reuse node memory instead of
// re-allocating. See the "Architecture: DD memory system" section of
// README.md.
//
// Development gates: `make ci` runs gofmt -l cleanliness, go vet, the
// build, and the race-detector test suite — the same four checks the
// GitHub Actions workflow enforces on every push and pull request.
package repro
