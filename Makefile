# Local dev and CI invoke the same targets (.github/workflows/ci.yml runs
# `make fmt-check vet build race`), so a green `make ci` locally means a
# green pipeline.

GO ?= go

.PHONY: all build test race bench bench-smoke fmt fmt-check vet ci

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector (the CI gate)
race:
	$(GO) test -race ./...

## bench: one-iteration benchmark smoke pass (checks the harness, not perf)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-smoke: one-iteration dd + batch benchmarks with JSON output, so CI
## archives BENCH_dd.json and the gate-application perf trajectory is
## tracked PR over PR
bench-smoke:
	$(GO) test -run '^$$' -bench 'Gate|Batch' -benchtime 1x -benchmem -json \
		./internal/dd ./internal/batch > BENCH_dd.json
	@echo "bench-smoke: $$(grep -c '"Output":"Benchmark' BENCH_dd.json) benchmark lines -> BENCH_dd.json"

## fmt: rewrite all Go sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file needs gofmt (the CI gate)
fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## ci: everything the pipeline runs, in order
ci: fmt-check vet build race
