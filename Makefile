# Local dev and CI invoke the same targets (.github/workflows/ci.yml runs
# `make fmt-check vet build race`), so a green `make ci` locally means a
# green pipeline.

GO ?= go

.PHONY: all build test race bench bench-smoke examples fmt fmt-check vet doc-lint simd-smoke ci

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector (the CI gate)
race:
	$(GO) test -race ./...

## bench: one-iteration benchmark smoke pass (checks the harness, not perf)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-smoke: one-iteration dd + batch + session benchmarks with JSON
## output, so CI archives BENCH_dd.json and the gate-application and
## session-overhead (time and allocs/op) trajectories are tracked PR over PR
bench-smoke:
	$(GO) test -run '^$$' -bench 'Gate|Batch|Session' -benchtime 1x -benchmem -json \
		./internal/dd ./internal/batch ./internal/sim > BENCH_dd.json
	@echo "bench-smoke: $$(grep -c '"Output":"Benchmark' BENCH_dd.json) benchmark lines -> BENCH_dd.json"

## examples: compile every example program (the CI gate keeping docs honest)
examples:
	$(GO) build ./examples/...

## fmt: rewrite all Go sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file needs gofmt (the CI gate)
fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## doc-lint: fail when any package lacks a doc.go package comment, so
## `go doc` stays useful everywhere (the CI gate)
doc-lint:
	@fail=0; \
	for d in . $$(find internal -mindepth 1 -maxdepth 1 -type d | sort); do \
		if ! grep -qs '^// Package ' "$$d/doc.go"; then \
			echo "doc-lint: $$d/doc.go missing or lacks a '// Package ...' comment"; \
			fail=1; \
		fi; \
	done; \
	for f in cmd/*/main.go; do \
		if ! head -1 "$$f" | grep -q '^// Command '; then \
			echo "doc-lint: $$f lacks a '// Command ...' comment"; \
			fail=1; \
		fi; \
	done; \
	if [ "$$fail" -ne 0 ]; then exit 1; fi; \
	echo "doc-lint: all packages and commands documented"

## simd-smoke: build the simulation service, boot it, and run a QASM job
## end-to-end including a cache-hit resubmission (the CI gate)
simd-smoke:
	sh scripts/simd_smoke.sh

## ci: everything the pipeline runs, in order
ci: fmt-check vet doc-lint build examples race simd-smoke
