# Local dev and CI invoke the same targets (.github/workflows/ci.yml fans
# the `ci` target's steps out across parallel lint / build-test / bench /
# smoke jobs), so a green `make ci` locally means a green pipeline.

GO ?= go

# Perf-regression gate knobs (see scripts/benchsummary): relative ns/op
# regression that fails bench-check, and a baseline floor below which
# benchmarks are informational only — sub-microsecond timings (currently
# just GateApplicationWarm at ~90ns) swing well past the threshold run to
# run on shared runners even at -benchtime 100ms with min-of-5 selection.
BENCH_CHECK_THRESHOLD ?= 0.25
BENCH_CHECK_MIN_NS ?= 1000
# Parallel-scaling gate: required workers1/workers4 speedup (self-skips on
# runners with fewer than 4 CPUs) and required allocs+bytes reduction of the
# reused-manager arena configuration over fresh managers. 0 disables either.
BENCH_CHECK_MIN_SCALING ?= 2.5
BENCH_CHECK_MIN_ALLOC_FACTOR ?= 5
# Cluster routing gate: relative calibration-adjusted p99 regression of the
# hash-routed sweep that fails bench-check (the hit-rate gate — hash must
# beat round-robin — has no knob; it is the point of the router).
BENCH_CLUSTER_THRESHOLD ?= 0.25

# Coverage gate: the combined internal/core + internal/dd statement coverage
# measured when the gate landed (PR 8); cover-check fails below this floor.
COVER_FLOOR ?= 85.0

.PHONY: all build test race bench bench-smoke bench-check bench-baseline bench-cluster bench-cluster-baseline examples fmt fmt-check vet doc-lint atlas atlas-check simd-smoke cluster-smoke fuzz-smoke cover-check ci

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector (the CI gate)
race:
	$(GO) test -race ./...

## bench: one-iteration benchmark smoke pass (checks the harness, not perf)
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench-smoke: one-iteration dd + batch + session benchmarks, captured as
## the raw go-test JSON stream (BENCH_dd.json) and parsed by
## scripts/benchsummary into the stable-schema BENCH_summary.json
## (benchmark -> ns/op, allocs/op, custom metrics) that bench-check gates on
bench-smoke:
	$(GO) test -run '^$$' -bench 'Gate|Session|Channel' -benchtime 100ms -count 5 -benchmem -json \
		./internal/dd ./internal/sim ./internal/density > BENCH_dd.json
	$(GO) test -run '^$$' -bench 'Batch' -benchtime 1x -count 3 -benchmem -json \
		./internal/batch >> BENCH_dd.json
	$(GO) test -run '^$$' -bench 'Frontier' -benchtime 1x -count 3 -benchmem -json \
		./internal/benchtab >> BENCH_dd.json
	$(GO) run ./scripts/benchsummary -in BENCH_dd.json -out BENCH_summary.json

## bench-cluster: run the cluster latency harness (cmd/loadgen boots a local
## router + 2 backends and sweeps offered load under hash and round-robin
## routing), producing BENCH_cluster.json for the bench-check cluster gate
bench-cluster:
	$(GO) run ./cmd/loadgen -out BENCH_cluster.json

## bench-check: the perf-regression gate — fail when a Gate/Batch/Session
## benchmark's ns/op, allocs/op, or B/op regressed more than
## BENCH_CHECK_THRESHOLD against the committed bench_baseline.json, when
## BatchRun stops scaling (workers4 vs workers1, 4+ CPU runners only) or the
## arena configuration stops cutting allocations, when the ordering
## benchmark stops showing scored < identity peak nodes, when the replace
## pass stops dominating delete on the pairs frontier, when hash-affinity
## routing stops beating round-robin on cluster cache hit rate, or when the
## hash-routed p99 regresses more than BENCH_CLUSTER_THRESHOLD against
## bench_cluster_baseline.json (calibration-adjusted). Runs bench-smoke and
## bench-cluster first so both artifacts are fresh.
bench-check: bench-smoke bench-cluster
	$(GO) run ./scripts/benchsummary -check \
		-baseline bench_baseline.json -summary BENCH_summary.json \
		-threshold $(BENCH_CHECK_THRESHOLD) -min-ns $(BENCH_CHECK_MIN_NS) \
		-min-scaling $(BENCH_CHECK_MIN_SCALING) \
		-min-alloc-factor $(BENCH_CHECK_MIN_ALLOC_FACTOR) \
		-cluster BENCH_cluster.json -cluster-baseline bench_cluster_baseline.json \
		-cluster-threshold $(BENCH_CLUSTER_THRESHOLD)

## bench-baseline: refresh the committed perf baseline from a fresh
## bench-smoke run (commit the resulting bench_baseline.json)
bench-baseline: bench-smoke
	cp BENCH_summary.json bench_baseline.json
	@echo "bench-baseline: baseline refreshed; commit bench_baseline.json"

## bench-cluster-baseline: refresh the committed cluster latency baseline
## from a fresh bench-cluster run (commit bench_cluster_baseline.json)
bench-cluster-baseline: bench-cluster
	cp BENCH_cluster.json bench_cluster_baseline.json
	@echo "bench-cluster-baseline: baseline refreshed; commit bench_cluster_baseline.json"

## examples: compile every example program (the CI gate keeping docs honest)
examples:
	$(GO) build ./examples/...

## fmt: rewrite all Go sources with gofmt
fmt:
	gofmt -w .

## fmt-check: fail if any file needs gofmt (the CI gate)
fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## doc-lint: fail when any package lacks a doc.go package comment, so
## `go doc` stays useful everywhere (the CI gate)
doc-lint:
	@fail=0; \
	for d in . $$(find internal -mindepth 1 -maxdepth 1 -type d | sort); do \
		if ! grep -qs '^// Package ' "$$d/doc.go"; then \
			echo "doc-lint: $$d/doc.go missing or lacks a '// Package ...' comment"; \
			fail=1; \
		fi; \
	done; \
	for f in cmd/*/main.go; do \
		if ! head -1 "$$f" | grep -q '^// Command '; then \
			echo "doc-lint: $$f lacks a '// Command ...' comment"; \
			fail=1; \
		fi; \
	done; \
	if [ "$$fail" -ne 0 ]; then exit 1; fi; \
	echo "doc-lint: all packages and commands documented"

## fuzz-smoke: run every native fuzz target concurrently under one shared
## wall-clock budget (FUZZ_SMOKE_BUDGET, default 10s) so CI keeps exercising
## the mutation engines without paying 10s per target serially
fuzz-smoke:
	sh scripts/fuzz_smoke.sh

## cover-check: measure combined internal/core + internal/dd +
## internal/dense + internal/density statement coverage into coverage.out
## and fail below the committed COVER_FLOOR
cover-check:
	$(GO) test -coverprofile=coverage.out ./internal/core ./internal/dd ./internal/dense ./internal/density
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "cover-check: core+dd+dense+density coverage %.1f%% below floor %.1f%%\n", t, floor; exit 1 } \
		printf "cover-check: core+dd+dense+density coverage %.1f%% (floor %.1f%%)\n", t, floor }'

## atlas: regenerate the approximability atlas — docs/ATLAS.md (committed),
## internal/atlas/winners_gen.go (committed, drives strategy=auto), and
## BENCH_atlas.json (gitignored runtime artifact)
atlas:
	$(GO) run ./cmd/atlas

## atlas-check: regenerate the atlas from the seeded sweeps and fail if the
## committed docs/ATLAS.md or winners table drifted (the CI gate keeping
## strategy=auto honest against the measured grid)
atlas-check:
	$(GO) run ./cmd/atlas -check

## simd-smoke: build the simulation service, boot it, and run a QASM job
## end-to-end including a cache-hit resubmission (the CI gate)
simd-smoke:
	sh scripts/simd_smoke.sh

## cluster-smoke: boot a router + 2 backends, run a QASM job through the
## router, verify hash-affinity cache hits and aggregated cluster stats, and
## drain gracefully on SIGTERM (the CI gate)
cluster-smoke:
	sh scripts/cluster_smoke.sh

## ci: everything the pipeline runs, in order
ci: fmt-check vet doc-lint build examples race fuzz-smoke cover-check atlas-check simd-smoke cluster-smoke
