package repro_test

// Integration tests exercising the public facade exactly as the README and
// examples present it.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/client"
)

func TestFacadeBellState(t *testing.T) {
	c := repro.NewCircuit(2, "bell")
	c.H(1)
	c.CX(1, 0)
	s := repro.NewSimulator()
	res, err := s.Run(c, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vec := s.M.ToVector(res.Final, 2)
	want := 1 / math.Sqrt2
	if math.Abs(real(vec[0])-want) > 1e-12 || math.Abs(real(vec[3])-want) > 1e-12 {
		t.Errorf("Bell amplitudes %v", vec)
	}
}

func TestFacadeApproximationFlow(t *testing.T) {
	c := repro.RandomCliffordTCircuit(8, 120, 4)
	cmp, err := repro.RunAndCompare(c, repro.Options{
		Strategy: &repro.MemoryDriven{Threshold: 16, RoundFidelity: 0.97},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TrueFidelity < cmp.Approx.FidelityBound-1e-6 {
		t.Errorf("true fidelity %v below bound %v", cmp.TrueFidelity, cmp.Approx.FidelityBound)
	}
}

func TestFacadeShor(t *testing.T) {
	out, err := repro.ShorFactor(15, repro.ShorRunOptions{Shots: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Factors.Success || out.Factors.Factor1*out.Factors.Factor2 != 15 {
		t.Errorf("Factor(15): %+v", out.Factors)
	}
}

func TestFacadeQASMRoundTrip(t *testing.T) {
	c := repro.GHZCircuit(4)
	src, err := repro.ExportQASM(c)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := repro.ParseQASM(src, "ghz")
	if err != nil {
		t.Fatal(err)
	}
	eq, err := repro.CircuitsEquivalent(c, prog.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Equivalent {
		t.Error("QASM round trip broke equivalence")
	}
}

func TestFacadeContributionsAndApprox(t *testing.T) {
	s := repro.NewSimulator()
	res, err := s.Run(repro.WStateCircuit(6), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	contribs := repro.NodeContributions(s.M, res.Final)
	if len(contribs) == 0 {
		t.Fatal("no contributions")
	}
	_, rep, err := repro.ApproximateToFidelity(s.M, res.Final, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Achieved < 0.8-1e-9 {
		t.Errorf("fidelity guarantee broken: %v", rep.Achieved)
	}
	small, rep2, err := repro.ApproximateToSize(s.M, res.Final, 8)
	if err != nil {
		t.Fatal(err)
	}
	if repro.CountNodes(small) > 10 || rep2.Achieved <= 0 {
		t.Errorf("size-targeted approximation: %d nodes, f=%v",
			repro.CountNodes(small), rep2.Achieved)
	}
}

func TestFacadeXEB(t *testing.T) {
	cfg := repro.SupremacyConfig{Rows: 3, Cols: 3, Depth: 48, Seed: 1}
	c, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s := repro.NewSimulator()
	res, err := s.Run(c, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	score, err := repro.XEBScore(s.M, res.Final, res.Final, 9, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(score-1) > 0.2 {
		t.Errorf("self-XEB %v", score)
	}
}

func TestFacadeTable1Formatting(t *testing.T) {
	suite, err := repro.Table1("small")
	if err != nil {
		t.Fatal(err)
	}
	if suite.Name != "small" || len(suite.Shor) == 0 {
		t.Error("suite misconfigured")
	}
	rows := []repro.Table1Row{{
		Approach: "fidelity-driven", Name: "shor_15_7", Qubits: 12,
		ExactMaxDD: 43, RoundFid: 0.9, FinalFid: 1, TrueFidelity: 1,
	}}
	md := repro.FormatTable(rows)
	if !strings.Contains(md, "shor_15_7") {
		t.Error("markdown formatting broken")
	}
	csv := repro.FormatTableCSV(rows)
	if !strings.Contains(csv, "fidelity-driven") {
		t.Error("CSV formatting broken")
	}
}

func TestFacadeDOTAndRender(t *testing.T) {
	s := repro.NewSimulator()
	res, err := s.Run(repro.GHZCircuit(3), repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dot := repro.DOTDD(res.Final, "ghz"); !strings.Contains(dot, "digraph") {
		t.Error("DOT broken")
	}
	if r := repro.RenderDD(res.Final); !strings.Contains(r, "q2") {
		t.Error("Render broken")
	}
}

func TestFacadeGenerators(t *testing.T) {
	for name, c := range map[string]*repro.Circuit{
		"qft":    repro.QFTCircuit(5),
		"iqft":   repro.InverseQFTCircuit(5),
		"ghz":    repro.GHZCircuit(5),
		"w":      repro.WStateCircuit(5),
		"grover": repro.GroverCircuit(5, 3, 2),
		"bv":     repro.BernsteinVaziraniCircuit(5, 0b10110),
	} {
		if c.Len() == 0 {
			t.Errorf("%s: empty circuit", name)
		}
		s := repro.NewSimulator()
		if _, err := s.Run(c, repro.Options{}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Example_quickstart simulates a Bell state exactly and reads measurement
// probabilities off the final decision diagram.
func Example_quickstart() {
	c := repro.NewCircuit(2, "bell")
	c.H(1)
	c.CX(1, 0)
	s := repro.NewSimulator()
	res, err := s.Run(c, repro.Options{})
	if err != nil {
		panic(err)
	}
	for idx := uint64(0); idx < 4; idx++ {
		fmt.Printf("P(|%02b>) = %.2f\n", idx, s.M.Probability(res.Final, idx, 2))
	}
	// Output:
	// P(|00>) = 0.50
	// P(|01>) = 0.00
	// P(|10>) = 0.00
	// P(|11>) = 0.50
}

// Example_fidelityDriven runs the paper's proactive strategy: plan
// ⌊log_fround(f_final)⌋ approximation rounds up front and guarantee the
// final fidelity stays above f_final.
func Example_fidelityDriven() {
	strategy := repro.NewFidelityDriven(0.75, 0.9) // f_final, f_round
	fmt.Println("planned rounds:", strategy.MaxRounds())

	c := repro.RandomCliffordTCircuit(10, 300, 1)
	cmp, err := repro.RunAndCompare(c, repro.Options{Strategy: strategy})
	if err != nil {
		panic(err)
	}
	fmt.Println("bound respects request:", cmp.Approx.FidelityBound >= 0.75-1e-9)
	fmt.Println("true fidelity above bound:", cmp.TrueFidelity >= cmp.Approx.FidelityBound-1e-9)
	// Output:
	// planned rounds: 2
	// bound respects request: true
	// true fidelity above bound: true
}

// Example_qasmRoundTrip exports a circuit to OpenQASM 2.0, parses it back,
// and checks equivalence with decision diagrams (V†·U ≟ λ·I).
func Example_qasmRoundTrip() {
	ghz := repro.GHZCircuit(4)
	src, err := repro.ExportQASM(ghz)
	if err != nil {
		panic(err)
	}
	prog, err := repro.ParseQASM(src, "ghz-again")
	if err != nil {
		panic(err)
	}
	eq, err := repro.CircuitsEquivalent(ghz, prog.Circuit)
	if err != nil {
		panic(err)
	}
	fmt.Println("round trip equivalent:", eq.Equivalent)
	// Output:
	// round trip equivalent: true
}

// ExampleNewServer embeds the simulation service in-process: submit a
// circuit, poll until done, and observe the content-addressed cache
// deduplicating a repeated submission.
func ExampleNewServer() {
	srv := repro.NewServer(repro.ServeConfig{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Shutdown(context.Background())
	}()

	submit := func() repro.ServeJobStatus {
		body := strings.NewReader(`{
			"name": "bell", "qubits": 2, "seed": 11, "shots": 100,
			"gates": [{"name": "h", "target": 1},
			          {"name": "x", "target": 0, "controls": [1]}]
		}`)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", body)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		var st repro.ServeJobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			panic(err)
		}
		return st
	}

	first := submit()
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + first.ID)
		if err != nil {
			panic(err)
		}
		json.NewDecoder(resp.Body).Decode(&first)
		resp.Body.Close()
		if first.Status != "queued" && first.Status != "running" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var res repro.ServeResult
	json.Unmarshal(first.Result, &res)
	fmt.Println("first:", first.Status, "cached:", first.Cached, "qubits:", res.NumQubits)

	second := submit()
	fmt.Println("second:", second.Status, "cached:", second.Cached)
	// Output:
	// first: done cached: false qubits: 2
	// second: done cached: true
}

func TestFacadeBatchRun(t *testing.T) {
	jobs := make([]repro.BatchJob, 6)
	for i := range jobs {
		jobs[i] = repro.BatchJob{
			Name:    "rct" + string(rune('0'+i)),
			Circuit: repro.RandomCliffordTCircuit(7, 100, int64(i)),
			NewStrategy: func() repro.Strategy {
				return &repro.MemoryDriven{Threshold: 16, RoundFidelity: 0.97}
			},
		}
	}
	res, err := repro.BatchRun(context.Background(), jobs,
		repro.WithWorkers(3), repro.WithBaseSeed(5), repro.WithReuseManagers())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(jobs) {
		t.Fatalf("completed %d of %d jobs", res.Completed, len(jobs))
	}
	for i, jr := range res.Jobs {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if jr.Seed != repro.BatchSeed(5, i) {
			t.Errorf("job %d seed %d, want %d", i, jr.Seed, repro.BatchSeed(5, i))
		}
		if jr.Result.FidelityBound > jr.Result.EstimatedFidelity+1e-9 {
			t.Errorf("job %d: bound %v above tracked fidelity %v",
				i, jr.Result.FidelityBound, jr.Result.EstimatedFidelity)
		}
	}
	if res.CPUTime <= 0 || res.WallTime <= 0 {
		t.Errorf("missing time accounting: cpu=%v wall=%v", res.CPUTime, res.WallTime)
	}
	jobsSeen := 0
	for w, ws := range res.PerWorker {
		jobsSeen += ws.Jobs
		if ws.Jobs > 0 && ws.ArenaNodes == 0 {
			t.Errorf("worker %d ran %d jobs but reports no arena occupancy", w, ws.Jobs)
		}
	}
	if jobsSeen != len(jobs) {
		t.Errorf("per-worker job counts sum to %d, want %d", jobsSeen, len(jobs))
	}
}

// halveAt is the facade test's custom strategy: one approximation round at a
// fixed gate index. Registered below, it is driven both in-process (through
// repro.WithStrategy) and over HTTP by name (through the typed client) — the
// end-to-end contract of the strategy registry.
type halveAt struct {
	At    int     `json:"at"`
	Round float64 `json:"round_fidelity"`

	fired bool
}

func (s *halveAt) Name() string { return "halve-at" }

func (s *halveAt) Init(total int, blocks []int) error {
	if s.At < 0 || s.At >= total {
		return fmt.Errorf("halve-at: gate %d outside circuit of %d gates", s.At, total)
	}
	if s.Round <= 0 || s.Round > 1 {
		return fmt.Errorf("halve-at: round fidelity %v outside (0, 1]", s.Round)
	}
	s.fired = false
	return nil
}

func (s *halveAt) AfterGate(m *repro.Manager, gateIdx, size int, state repro.VEdge) (repro.VEdge, *repro.Round, error) {
	if s.fired || gateIdx != s.At {
		return state, nil, nil
	}
	s.fired = true
	ne, rep, err := repro.ApproximateToFidelity(m, state, s.Round)
	if err != nil || rep.NoOp() {
		return state, nil, err
	}
	return ne, &repro.Round{GateIndex: gateIdx, Report: rep}, nil
}

func init() {
	if err := repro.RegisterStrategy("halve-at", func(params json.RawMessage) (repro.Strategy, error) {
		s := &halveAt{}
		if len(params) > 0 {
			if err := json.Unmarshal(params, s); err != nil {
				return nil, err
			}
		}
		return s, nil
	}); err != nil {
		panic(err)
	}
}

func TestCustomStrategyEndToEnd(t *testing.T) {
	circ := repro.RandomCliffordTCircuit(9, 120, 11)
	params := json.RawMessage(`{"at": 90, "round_fidelity": 0.9}`)

	// In-process: build from the registry, run through the facade.
	strat, err := repro.NewStrategyByName("halve-at", params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Run(circ, repro.WithStrategy(strat))
	if err != nil {
		t.Fatal(err)
	}
	if res.StrategyName != "halve-at" {
		t.Errorf("strategy name %q", res.StrategyName)
	}
	if len(res.Rounds) != 1 || res.Rounds[0].GateIndex != 90 {
		t.Fatalf("custom strategy rounds: %+v", res.Rounds)
	}

	// Over HTTP: same strategy by name, via the embedded service and the
	// typed client, streaming its round as an event.
	srv := repro.NewServer(repro.ServeConfig{Workers: 1})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	qasm, err := repro.ExportQASM(circ)
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(hs.URL)
	job, err := cl.Submit(context.Background(), client.JobRequest{
		Name:           "halve-at-http",
		QASM:           qasm,
		Strategy:       "halve-at",
		StrategyParams: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []client.Event
	final, err := cl.Stream(context.Background(), job.ID, func(e client.Event) error {
		if e.Type == client.EventApproximation {
			streamed = append(streamed, e)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != client.StatusDone {
		t.Fatalf("job ended %q: %s", final.Status, final.Error)
	}
	if len(streamed) != 1 || streamed[0].GateIndex != 90 {
		t.Fatalf("streamed approximation events: %+v", streamed)
	}
	httpRes, err := cl.Result(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if httpRes.Strategy != "halve-at" || len(httpRes.Rounds) != 1 {
		t.Fatalf("HTTP result: strategy %q, %d rounds", httpRes.Strategy, len(httpRes.Rounds))
	}
	// The same circuit position approximated in both paths.
	if httpRes.Rounds[0].GateIndex != res.Rounds[0].GateIndex ||
		httpRes.Rounds[0].RemovedNodes != res.Rounds[0].Report.RemovedNodes {
		t.Errorf("in-process round %+v vs HTTP round %+v", res.Rounds[0], httpRes.Rounds[0])
	}
}

func TestFacadeSessionStepping(t *testing.T) {
	circ := repro.QFTCircuit(8)
	ref, err := repro.Run(circ)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := repro.NewSession(circ)
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Seek(circ.Len() / 2); err != nil {
		t.Fatal(err)
	}
	if got := repro.CountNodes(ses.State()); got <= 0 {
		t.Errorf("mid-run state has %d nodes", got)
	}
	res, err := ses.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDDSize != ref.FinalDDSize || res.MaxDDSize != ref.MaxDDSize {
		t.Errorf("session result diverged from Run: final %d/%d max %d/%d",
			res.FinalDDSize, ref.FinalDDSize, res.MaxDDSize, ref.MaxDDSize)
	}
}

func Example_sessionObserver() {
	// Step a simulation gate by gate and watch its approximation rounds
	// arrive as events — the mid-run surface the paper's strategies run on.
	c := repro.NewCircuit(2, "bell")
	c.H(1)
	c.CX(1, 0)

	ses, err := repro.NewSession(c, repro.WithObserver(printRounds{}))
	if err != nil {
		panic(err)
	}
	for ses.Remaining() > 0 {
		if err := ses.Step(); err != nil {
			panic(err)
		}
		fmt.Printf("after gate %d: %d nodes\n", ses.Pos()-1, repro.CountNodes(ses.State()))
	}
	res, err := ses.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Printf("done: %d gates, final %d nodes\n", res.GateCount, res.FinalDDSize)
	// Output:
	// after gate 0: 2 nodes
	// after gate 1: 3 nodes
	// done: 2 gates, final 3 nodes
}

// printRounds reports approximation rounds; everything else is a no-op.
type printRounds struct{ repro.NopObserver }

func (printRounds) OnApproximation(r repro.Round) {
	fmt.Printf("round at gate %d\n", r.GateIndex)
}

func TestFacadeReplaceStrategy(t *testing.T) {
	// In-process use of the node-replacement strategy, both as a typed
	// value and by registry name with JSON params, composed under reorder.
	c := repro.RandomCliffordTCircuit(8, 120, 4)
	cmp, err := repro.RunAndCompare(c, repro.Options{
		Strategy: &repro.ReplaceDriven{NodeBudget: 16, FidelityFloor: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TrueFidelity < cmp.Approx.FidelityBound-1e-6 {
		t.Errorf("true fidelity %v below bound %v", cmp.TrueFidelity, cmp.Approx.FidelityBound)
	}
	// The floor guarantees the product of achieved round fidelities (the
	// tracked estimate); the pessimistic per-round bound may dip below it.
	if cmp.Approx.EstimatedFidelity < 0.6-1e-9 {
		t.Errorf("estimated fidelity %v below the requested floor", cmp.Approx.EstimatedFidelity)
	}
	replaced := 0
	for _, r := range cmp.Approx.Rounds {
		replaced += r.Report.ReplacedNodes
	}
	if replaced == 0 {
		t.Error("no nodes replaced at budget 16")
	}

	byName, err := repro.NewStrategyByName("replace",
		json.RawMessage(`{"node_budget":16,"kinds":["collapse"]}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Run(c, repro.WithStrategy(
		repro.NewReorder(repro.ReorderPolicy{Static: "scored"}, byName)))
	if err != nil {
		t.Fatal(err)
	}
	if res.StrategyName != "reorder(scored)+replace" {
		t.Errorf("strategy name = %q", res.StrategyName)
	}
}
